//! The staged detection pipeline: sanitize → featurize → detect → fuse
//! → health/alarm.
//!
//! [`DetectionPipeline`] owns an ordered set of pluggable
//! [`Detector`]s, a [`FusionPolicy`], an optional [`TraceSanitizer`],
//! and the sensor-health state machine, and runs every observation
//! through the same five stages:
//!
//! 1. **sanitize** — structural screening before anything is computed;
//!    rejected observations feed the health tracker and never alarm;
//! 2. **featurize** — the [`FeatureFrame`] is filled once per
//!    observation with the union of the registered detectors' feature
//!    plans (RMS features, energy ratio, projection, Welch spectrum);
//! 3. **detect** — every detector of the observation's domain scores
//!    the shared frame (pure, fanned across the worker pool in batch
//!    paths);
//! 4. **fuse** — the per-detector votes reduce to one alarm decision
//!    per the fusion policy, and stateful detectors absorb the
//!    observation serially;
//! 5. **health/alarm** — counters, telemetry, the alarm log, and the
//!    health tracker are updated in observation order.
//!
//! Batch entry points fan stages 2–3 across a [`ParallelConfig`] worker
//! pool with chunk layouts independent of the worker count, so results
//! are bit-identical for every worker count. The legacy
//! [`TrustMonitor`](crate::monitor::TrustMonitor) is a thin
//! compatibility wrapper over a pipeline with an Euclidean detector, an
//! optional spectral detector, and [`FusionPolicy::Or`].

use crate::array::{ConsensusConfig, ConsensusDetector};
use crate::baseline::{BaselineSource, CalibrationState};
use crate::detector::{
    Detector, DetectorDomain, DetectorVerdict, EuclideanDetector, GoldenContext, Score,
    SpectralWindowDetector, WelchSpec,
};
use crate::features::FeatureFrame;
use crate::fingerprint::{FingerprintConfig, GoldenFingerprint};
use crate::fusion::FusionPolicy;
use crate::health::{HealthConfig, HealthTracker, SensorHealth};
use crate::learned::{LearnedConfig, LearnedDetector};
use crate::parallel::ParallelConfig;
use crate::persistence::{PersistenceConfig, SpectralPersistenceDetector};
use crate::sanitize::{SanitizerConfig, TraceDefect, TraceSanitizer, TraceVerdict};
use crate::spectral::SpectralConfig;
use crate::TrustError;
use emtrust_dsp::spectrum::Spectrum;
use emtrust_dsp::DspError;
use emtrust_em::emf::VoltageTrace;
use emtrust_telemetry::{
    self as telemetry, DecisionRecord, DetectorDecision, FieldValue, FlightRecorder, FlightWindow,
    ForensicsConfig, FrameDigest, LabelSet,
};

/// A fused alarm raised by the pipeline.
///
/// Like the legacy [`Alarm`](crate::monitor::Alarm), the
/// `correlation_id` is forensic metadata: [`PartialEq`] ignores it, so
/// replayed runs compare equal alarm for alarm.
#[derive(Debug, Clone)]
pub struct PipelineAlarm {
    /// The domain the fused decision belongs to.
    pub domain: DetectorDomain,
    /// Ingest index of the offending observation (trace or window
    /// counter, per domain).
    pub index: u64,
    /// Every detector's vote behind the fused decision, in registration
    /// order.
    pub verdicts: Vec<DetectorVerdict>,
    /// Process-unique forensic correlation id.
    pub correlation_id: u64,
}

impl PartialEq for PipelineAlarm {
    /// Detection-level equality: ignores the per-run `correlation_id`.
    fn eq(&self, other: &Self) -> bool {
        self.domain == other.domain && self.index == other.index && self.verdicts == other.verdicts
    }
}

/// The pipeline's outcome for one per-encryption trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// The sanitizer's classification ([`TraceVerdict::Clean`] when no
    /// sanitizer is installed).
    pub verdict: TraceVerdict,
    /// Ingest index, when the trace was scored (`None` for rejected
    /// traces).
    pub index: Option<u64>,
    /// Per-detector votes, in registration order (empty when rejected).
    pub votes: Vec<DetectorVerdict>,
    /// The fused alarm, if one fired.
    pub alarm: Option<PipelineAlarm>,
    /// Sensor health after absorbing this trace's outcome.
    pub health: SensorHealth,
}

/// The pipeline's outcome for one continuous monitoring window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// The sanitizer's classification of the window.
    pub verdict: TraceVerdict,
    /// Window ingest index, when the window was scored.
    pub index: Option<u64>,
    /// Per-detector votes, in registration order (empty when rejected
    /// or when no window detector is registered).
    pub votes: Vec<DetectorVerdict>,
    /// The fused alarm, if one fired.
    pub alarm: Option<PipelineAlarm>,
    /// Sensor health after absorbing this window's outcome.
    pub health: SensorHealth,
}

/// The pipeline's outcome for a batch of per-encryption traces.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per input trace, in trace order.
    pub outcomes: Vec<TraceOutcome>,
    /// The fused alarms the batch raised, in trace order.
    pub alarms: Vec<PipelineAlarm>,
}

impl BatchOutcome {
    /// Number of traces the sanitizer passed as clean.
    pub fn clean(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_clean())
            .count()
    }

    /// Number of traces scored despite mild defects.
    pub fn degraded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_degraded())
            .count()
    }

    /// Number of traces excluded from scoring.
    pub fn rejected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_rejected())
            .count()
    }
}

/// Declarative description of one detector — the factory counterpart
/// of [`PipelineBuilder::detector`], so harnesses (the attribution
/// bench, config-file front-ends) can sweep detector sets as plain
/// data instead of hand-wiring constructors.
///
/// Every variant builds the *unfitted* form of its detector; fit it
/// through [`DetectionPipeline::fit`] / `fit_baseline` as usual. A
/// pipeline assembled from configs is bit-identical to one wired by
/// hand from the same configs (pinned by test).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DetectorConfig {
    /// Reference-distance detector over RMS features
    /// ([`EuclideanDetector`]).
    Euclidean(FingerprintConfig),
    /// Golden-spectrum window detector ([`SpectralWindowDetector`]).
    SpectralWindow(SpectralConfig),
    /// Reference-free hot-bin persistence detector
    /// ([`SpectralPersistenceDetector`]).
    SpectralPersistence(PersistenceConfig),
    /// Learned logistic-regression trace classifier
    /// ([`LearnedDetector`]).
    Learned(LearnedConfig),
    /// Cross-sensor spatial-asymmetry consensus ([`ConsensusDetector`],
    /// scored over per-tile margins rather than traces).
    Consensus(ConsensusConfig),
}

impl DetectorConfig {
    /// The [`Detector::name`] the built detector will report.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Euclidean(_) => "euclidean",
            Self::SpectralWindow(_) => "spectral",
            Self::SpectralPersistence(_) => "persistence",
            Self::Learned(_) => "learned",
            Self::Consensus(_) => "consensus",
        }
    }

    /// Checks the wrapped configuration's invariants.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] naming the violated bound.
    pub fn validate(&self) -> Result<(), TrustError> {
        match self {
            Self::Euclidean(_) | Self::SpectralWindow(_) | Self::SpectralPersistence(_) => Ok(()),
            Self::Learned(cfg) => cfg.validate(),
            Self::Consensus(cfg) => cfg.validate(),
        }
    }

    /// Builds the unfitted detector.
    ///
    /// # Errors
    ///
    /// Forwarded from [`Self::validate`].
    pub fn build(&self) -> Result<Box<dyn Detector>, TrustError> {
        self.validate()?;
        Ok(match self {
            Self::Euclidean(cfg) => Box::new(EuclideanDetector::from_config(*cfg)),
            Self::SpectralWindow(cfg) => Box::new(SpectralWindowDetector::from_config(*cfg)),
            Self::SpectralPersistence(cfg) => Box::new(SpectralPersistenceDetector::new(*cfg)),
            Self::Learned(cfg) => Box::new(LearnedDetector::from_config(*cfg)),
            Self::Consensus(cfg) => Box::new(ConsensusDetector::new(*cfg)?),
        })
    }
}

/// Builder for [`DetectionPipeline`].
#[derive(Debug, Default)]
pub struct PipelineBuilder {
    detectors: Vec<Box<dyn Detector>>,
    fusion: FusionPolicy,
    sanitizer: Option<TraceSanitizer>,
    health: Option<HealthConfig>,
    parallel: Option<ParallelConfig>,
    labels: LabelSet,
    forensics: Option<ForensicsConfig>,
}

impl PipelineBuilder {
    /// Registers a detector. Registration order is vote order (fusion
    /// weights index it) and featurizer-provider precedence.
    pub fn detector(mut self, detector: Box<dyn Detector>) -> Self {
        self.detectors.push(detector);
        self
    }

    /// Registers a detector built from its declarative
    /// [`DetectorConfig`] — same ordering semantics as
    /// [`Self::detector`].
    ///
    /// # Errors
    ///
    /// Forwarded from [`DetectorConfig::build`].
    pub fn detector_config(self, config: &DetectorConfig) -> Result<Self, TrustError> {
        Ok(self.detector(config.build()?))
    }

    /// Sets the fusion policy (default: [`FusionPolicy::Or`]).
    pub fn fusion(mut self, fusion: FusionPolicy) -> Self {
        self.fusion = fusion;
        self
    }

    /// Installs a trace sanitizer. A sanitizer without an expected
    /// length inherits it from the first registered projection
    /// provider, so mis-sized traces are rejected before scoring.
    pub fn sanitizer(mut self, sanitizer: TraceSanitizer) -> Self {
        self.sanitizer = Some(sanitizer);
        self
    }

    /// Replaces the sensor-health configuration.
    pub fn health_config(mut self, config: HealthConfig) -> Self {
        self.health = Some(config);
        self
    }

    /// Overrides the worker-pool configuration for batch paths. The
    /// default is the first projection provider's parallel policy
    /// (falling back to [`ParallelConfig::default`]), which is what the
    /// legacy monitor used.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Attaches identity labels (`chip_id`, `tile`, …) to every metric
    /// series and decision record this pipeline emits.
    pub fn labels(mut self, labels: LabelSet) -> Self {
        self.labels = labels;
        self
    }

    /// Enables decision forensics: a [`DecisionRecord`] per ingested
    /// observation (bounded log) and the alarm [`FlightRecorder`].
    /// Without this the pipeline allocates no forensic state, keeping
    /// the NullRecorder fast path untouched.
    pub fn forensics(mut self, config: ForensicsConfig) -> Self {
        self.forensics = Some(config);
        self
    }

    /// Assembles the pipeline.
    pub fn build(self) -> DetectionPipeline {
        let parallel = self.parallel.unwrap_or_else(|| {
            self.detectors
                .iter()
                .find_map(|d| d.projector().map(|fp| fp.config().parallel))
                .unwrap_or_default()
        });
        // Per-detector label sets are fixed at build time so the hot
        // path never re-renders them.
        let labels_for = |domain: DetectorDomain| -> Vec<LabelSet> {
            self.detectors
                .iter()
                .filter(|d| d.domain() == domain)
                .map(|d| self.labels.with("detector", d.name()))
                .collect()
        };
        let trace_detector_labels = labels_for(DetectorDomain::PerEncryption);
        let window_detector_labels = labels_for(DetectorDomain::ContinuousWindow);
        let mut pipeline = DetectionPipeline {
            detectors: self.detectors,
            fusion: self.fusion,
            sanitizer: None,
            health: self
                .health
                .map_or_else(HealthTracker::default, HealthTracker::new),
            parallel,
            labels: self.labels,
            trace_detector_labels,
            window_detector_labels,
            forensics: self.forensics.map(PipelineForensics::new),
            self_calibrating: false,
            pending_window_transition: None,
            traces_seen: 0,
            traces_rejected: 0,
            traces_degraded: 0,
            windows_seen: 0,
            windows_rejected: 0,
            alarms: Vec::new(),
        };
        if let Some(s) = self.sanitizer {
            pipeline.install_sanitizer(s);
        }
        pipeline
    }
}

/// Forensic state a pipeline only carries when
/// [`PipelineBuilder::forensics`] enabled it.
#[derive(Debug)]
struct PipelineForensics {
    flight: FlightRecorder,
    decisions: Vec<DecisionRecord>,
    decisions_dropped: u64,
    max_decisions: usize,
}

impl PipelineForensics {
    fn new(config: ForensicsConfig) -> Self {
        Self {
            flight: FlightRecorder::new(config.flight),
            decisions: Vec::new(),
            decisions_dropped: 0,
            max_decisions: config.max_decisions,
        }
    }
}

/// One trace after the pure (parallel-safe) stages: screened,
/// featurized, and scored. [`DetectionPipeline::absorb_trace`] turns it
/// into a [`TraceOutcome`] serially.
#[derive(Debug)]
struct ScreenedTrace<'a> {
    verdict: TraceVerdict,
    /// `None` ⇔ the sanitizer rejected the trace before featurization;
    /// `Some(Err)` ⇔ featurization or scoring failed.
    scored: Option<Result<(FeatureFrame<'a>, Vec<Score>), TrustError>>,
}

/// The staged detection pipeline (see module docs).
#[derive(Debug)]
pub struct DetectionPipeline {
    detectors: Vec<Box<dyn Detector>>,
    fusion: FusionPolicy,
    sanitizer: Option<TraceSanitizer>,
    health: HealthTracker,
    parallel: ParallelConfig,
    labels: LabelSet,
    trace_detector_labels: Vec<LabelSet>,
    window_detector_labels: Vec<LabelSet>,
    forensics: Option<PipelineForensics>,
    /// Whether the pipeline was fitted from a self-calibrating baseline
    /// source; gates the calibration-state stamp on decision records so
    /// golden pipelines stay byte-identical.
    self_calibrating: bool,
    /// Health transition captured by the checked window path for the
    /// decision record the subsequent scoring pass emits.
    pending_window_transition: Option<(String, String)>,
    traces_seen: u64,
    traces_rejected: u64,
    traces_degraded: u64,
    windows_seen: u64,
    windows_rejected: u64,
    alarms: Vec<PipelineAlarm>,
}

impl DetectionPipeline {
    /// Starts building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Assembles an unfitted pipeline from declarative detector
    /// descriptions, in the given (vote) order — the factory entry the
    /// evaluation harness sweeps detector sets through. Other builder
    /// knobs keep their defaults; use [`Self::builder`] with
    /// [`PipelineBuilder::detector_config`] when they matter.
    ///
    /// # Errors
    ///
    /// Forwarded from [`DetectorConfig::build`].
    pub fn from_configs(
        configs: &[DetectorConfig],
        fusion: FusionPolicy,
    ) -> Result<Self, TrustError> {
        let mut builder = Self::builder().fusion(fusion);
        for config in configs {
            builder = builder.detector_config(config)?;
        }
        Ok(builder.build())
    }

    /// Fits every registered detector on the golden context, in
    /// registration order.
    ///
    /// # Errors
    ///
    /// The first detector's fitting error (later detectors are left
    /// unfitted).
    pub fn fit(&mut self, ctx: &GoldenContext<'_>) -> Result<(), TrustError> {
        let _span = telemetry::span("pipeline_fit");
        for d in &mut self.detectors {
            d.fit(ctx)?;
        }
        self.self_calibrating = false;
        Ok(())
    }

    /// Fits every registered detector from a [`BaselineSource`], in
    /// registration order. The `Golden` arm is exactly [`Self::fit`];
    /// the `SelfCalibrating` arm puts every detector into its warm-up —
    /// the pipeline then runs the calibration state machine
    /// ([`Self::calibration_state`]): observations feed the rolling
    /// baselines through the serial calibrate hook (gated on sensor
    /// health) until every detector reports ready, and nothing can
    /// alarm before that.
    ///
    /// # Errors
    ///
    /// The first detector's fitting error (later detectors are left
    /// unfitted), or [`TrustError::InvalidParameter`] if a registered
    /// detector cannot self-calibrate.
    pub fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        match source {
            BaselineSource::Golden(ctx) => self.fit(ctx),
            BaselineSource::SelfCalibrating(_) => {
                let _span = telemetry::span("pipeline_fit");
                for d in &mut self.detectors {
                    d.fit_baseline(source)?;
                }
                self.self_calibrating = true;
                Ok(())
            }
        }
    }

    /// Whether every registered detector is ready to score.
    pub fn is_fitted(&self) -> bool {
        self.detectors.iter().all(|d| d.is_fitted())
    }

    /// Whether the pipeline was fitted from a self-calibrating
    /// (golden-model-free) baseline source.
    pub fn is_self_calibrating(&self) -> bool {
        self.self_calibrating
    }

    /// The calibration state machine's judgement: `Armed` once every
    /// registered detector reports [`DetectorReadiness::Ready`],
    /// `Calibrating` (with the ready count) before that. Meaningful for
    /// golden pipelines too — an unfitted detector keeps the pipeline
    /// out of `Armed`.
    ///
    /// [`DetectorReadiness::Ready`]: crate::baseline::DetectorReadiness
    pub fn calibration_state(&self) -> CalibrationState {
        let total = self.detectors.len();
        let ready = self
            .detectors
            .iter()
            .filter(|d| d.readiness().is_ready())
            .count();
        if ready == total {
            CalibrationState::Armed
        } else {
            CalibrationState::Calibrating { ready, total }
        }
    }

    /// Per-detector readiness, in registration order.
    pub fn detector_readiness(&self) -> Vec<crate::baseline::DetectorReadiness> {
        self.detectors.iter().map(|d| d.readiness()).collect()
    }

    /// The registered detectors, in registration (vote) order.
    pub fn detectors(&self) -> &[Box<dyn Detector>] {
        &self.detectors
    }

    /// Names of the registered detectors, in registration order.
    pub fn detector_names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// The fusion policy in effect.
    pub fn fusion(&self) -> &FusionPolicy {
        &self.fusion
    }

    /// The shared projection provider: the first registered detector
    /// lending a fitted fingerprint.
    pub fn projector(&self) -> Option<&GoldenFingerprint> {
        self.detectors.iter().find_map(|d| d.projector())
    }

    /// The shared Welch settings: the first registered detector lending
    /// a spec.
    fn welch_spec(&self) -> Option<WelchSpec> {
        self.detectors.iter().find_map(|d| d.welch_spec())
    }

    /// Installs a trace sanitizer (intended at construction time). A
    /// sanitizer without an expected length inherits it from the
    /// projection provider.
    pub fn install_sanitizer(&mut self, sanitizer: TraceSanitizer) {
        let sanitizer = match (sanitizer.config().expected_len, self.projector()) {
            (None, Some(fp)) => sanitizer.with_expected_len(fp.expected_trace_len()),
            _ => sanitizer,
        };
        self.sanitizer = Some(sanitizer);
    }

    /// Replaces the sensor-health configuration (resets the tracker;
    /// intended at construction time).
    pub fn set_health_config(&mut self, config: HealthConfig) {
        self.health = HealthTracker::new(config);
    }

    // ---------------------------------------------------------------
    // Pure stages (parallel-safe).
    // ---------------------------------------------------------------

    /// Whether any per-encryption detector needs the projection slot.
    fn trace_plan_needs_projection(&self) -> bool {
        self.detectors
            .iter()
            .filter(|d| d.domain() == DetectorDomain::PerEncryption)
            .any(|d| d.feature_plan().needs_projection)
    }

    /// Featurizes and scores one trace strictly: any failure is
    /// returned, nothing is absorbed.
    fn featurize_and_score<'a>(
        &self,
        samples: &'a [f64],
        rms: Option<Result<Vec<f64>, TrustError>>,
        ratio: Option<f64>,
    ) -> Result<(FeatureFrame<'a>, Vec<Score>), TrustError> {
        let mut frame = FeatureFrame::new(samples);
        if let Some(r) = ratio {
            frame.set_energy_ratio(r);
        }
        if self.trace_plan_needs_projection() {
            let fp = self.projector().ok_or(TrustError::InvalidParameter {
                what: "no projection provider registered for the feature plan",
            })?;
            let rms = match rms {
                Some(r) => r?,
                None => fp.features(samples)?,
            };
            let projection = fp.project_features(&rms)?;
            frame.set_rms(rms);
            frame.set_projection(projection);
        }
        let scores = self
            .detectors
            .iter()
            .filter(|d| d.domain() == DetectorDomain::PerEncryption)
            .map(|d| d.score(&frame))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((frame, scores))
    }

    /// The pure per-trace pass of the sanitized paths: RMS features →
    /// energy screen → projection → scores, with each transform
    /// computed exactly once. Never fails — failures come back inside
    /// the [`ScreenedTrace`].
    fn screen_and_score<'a>(&self, samples: &'a [f64]) -> ScreenedTrace<'a> {
        // Stage A: RMS features, shared by the energy screen and the
        // projection. Errors are deferred: the sanitizer may reject the
        // trace for a more specific structural reason first.
        let fp = self.projector();
        let rms = fp.map(|f| f.features(samples));
        let ratio = match (&rms, fp) {
            (Some(Ok(feats)), Some(f)) => Some(f.energy_ratio_of_features(feats)),
            _ => None,
        };
        let verdict = match &self.sanitizer {
            Some(s) => s.inspect_scaled(samples, ratio),
            None => TraceVerdict::Clean,
        };
        if verdict.is_rejected() {
            return ScreenedTrace {
                verdict,
                scored: None,
            };
        }
        // Stage B: projection and scoring on the shared frame.
        let scored = self.featurize_and_score(samples, rms, ratio);
        ScreenedTrace {
            verdict,
            scored: Some(scored),
        }
    }

    /// Maps an evaluation failure to the defect the legacy monitor
    /// attributed it to.
    fn evaluation_defect(e: &TrustError) -> TraceDefect {
        match e {
            TrustError::Dsp(DspError::LengthMismatch { expected, actual }) => {
                TraceDefect::WrongLength {
                    expected: *expected,
                    actual: *actual,
                }
            }
            _ => TraceDefect::EvaluationFailed,
        }
    }

    // ---------------------------------------------------------------
    // Serial stages.
    // ---------------------------------------------------------------

    /// Books one rejected trace.
    fn record_rejected(&mut self, reason: &TraceDefect) {
        self.traces_rejected += 1;
        telemetry::counter("monitor.trace_rejects", 1);
        if !self.labels.is_empty() {
            telemetry::counter_with("monitor.trace_rejects", &self.labels, 1);
        }
        telemetry::event(
            "trace_rejected",
            &[("reason", FieldValue::from(reason.label()))],
        );
    }

    /// Books one rejected continuous window.
    fn record_window_rejected(&mut self, reason: &TraceDefect) {
        self.windows_rejected += 1;
        telemetry::counter("monitor.window_rejects", 1);
        if !self.labels.is_empty() {
            telemetry::counter_with("monitor.window_rejects", &self.labels, 1);
        }
        telemetry::event(
            "window_rejected",
            &[("reason", FieldValue::from(reason.label()))],
        );
    }

    // ---------------------------------------------------------------
    // Decision forensics.
    // ---------------------------------------------------------------

    /// Whether decision records should be built for this observation:
    /// either the pipeline carries forensic state or a global recorder
    /// wants them. With neither, the check costs one branch and one
    /// relaxed atomic load — the NullRecorder fast path.
    #[inline]
    fn forensics_active(&self) -> bool {
        self.forensics.is_some() || telemetry::is_enabled()
    }

    /// Builds the decision skeleton for one scored observation.
    fn scored_decision(
        &self,
        domain: &str,
        index: u64,
        votes: &[DetectorVerdict],
        alarm: Option<&PipelineAlarm>,
        digest: FrameDigest,
    ) -> DecisionRecord {
        let mut rec = DecisionRecord::new(domain);
        rec.index = Some(index);
        rec.labels = self.labels.clone();
        rec.detectors = votes
            .iter()
            .map(|v| {
                DetectorDecision::new(
                    v.detector,
                    v.score.statistic,
                    v.score.threshold,
                    v.suspected,
                )
            })
            .collect();
        rec.fused_alarm = alarm.is_some();
        rec.correlation_id = alarm.map(|a| a.correlation_id);
        rec.digest = Some(digest);
        if self.self_calibrating {
            rec.calibration = Some(self.calibration_state().label().to_string());
        }
        rec
    }

    /// Builds the decision record for one rejected observation.
    fn rejected_decision(&self, domain: &str, reason: &TraceDefect) -> DecisionRecord {
        let mut rec = DecisionRecord::new(domain);
        rec.verdict = "rejected".to_string();
        rec.reject_reason = Some(reason.label().to_string());
        rec.labels = self.labels.clone();
        if self.self_calibrating {
            rec.calibration = Some(self.calibration_state().label().to_string());
        }
        rec
    }

    /// Emits the labeled per-detector margin series for one scored
    /// observation (only when identity labels are set — unlabeled
    /// pipelines keep the legacy exposition byte-compatible).
    fn emit_labeled_votes(&self, domain: DetectorDomain, decisions: &[DetectorDecision]) {
        if self.labels.is_empty() {
            return;
        }
        let per_detector = match domain {
            DetectorDomain::PerEncryption => &self.trace_detector_labels,
            DetectorDomain::ContinuousWindow => &self.window_detector_labels,
        };
        for (d, labels) in decisions.iter().zip(per_detector) {
            telemetry::observe_with("detector.margin", labels, d.margin);
        }
    }

    /// Finalizes and commits one decision record: the global recorder
    /// sees it first, then the pipeline's own forensic log and flight
    /// recorder (when enabled).
    fn commit_decision(&mut self, mut rec: DecisionRecord) {
        rec.health = self.health.state().label().to_string();
        if rec.health_transition.is_some() && !self.labels.is_empty() {
            telemetry::counter_with("monitor.health_transitions", &self.labels, 1);
        }
        telemetry::decision(&rec);
        if let Some(f) = &mut self.forensics {
            f.flight.record(&rec);
            if f.decisions.len() < f.max_decisions {
                f.decisions.push(rec);
            } else {
                f.decisions_dropped += 1;
            }
        }
    }

    /// Captures the `(from, to)` labels of a health transition that
    /// happened between `transitions_before` and now.
    fn transition_since(&self, transitions_before: usize) -> Option<(String, String)> {
        if self.health.transitions().len() > transitions_before {
            self.health
                .last_transition()
                .map(|t| (t.from.label().to_string(), t.to.label().to_string()))
        } else {
            None
        }
    }

    /// Collects the per-detector votes of one domain for a score list.
    fn votes_for(&self, domain: DetectorDomain, scores: &[Score]) -> Vec<DetectorVerdict> {
        self.detectors
            .iter()
            .filter(|d| d.domain() == domain)
            .zip(scores)
            .map(|(d, s)| DetectorVerdict {
                detector: d.name(),
                suspected: d.verdict(s),
                score: s.clone(),
            })
            .collect()
    }

    /// Runs the serial absorb and calibrate hooks of one domain's
    /// detectors. The calibrate hook receives the current sensor-health
    /// state so self-calibrating baselines can gate their updates (a
    /// no-op for golden-fitted detectors).
    fn absorb_hooks(&mut self, domain: DetectorDomain, frame: &FeatureFrame<'_>, scores: &[Score]) {
        let health = self.health.state();
        let mut scores = scores.iter();
        for d in self.detectors.iter_mut().filter(|d| d.domain() == domain) {
            if let Some(s) = scores.next() {
                d.absorb(frame, s);
                d.calibrate(frame, s, health);
            }
        }
    }

    /// Fuses one domain's votes; on alarm, draws the correlation id,
    /// emits telemetry, and appends to the alarm log.
    fn fuse(
        &mut self,
        domain: DetectorDomain,
        index: u64,
        votes: &[DetectorVerdict],
    ) -> Option<PipelineAlarm> {
        let flags: Vec<bool> = votes.iter().map(|v| v.suspected).collect();
        if !self.fusion.decide(&flags) {
            return None;
        }
        let alarm = PipelineAlarm {
            domain,
            index,
            verdicts: votes.to_vec(),
            correlation_id: telemetry::next_correlation_id(),
        };
        telemetry::counter("monitor.alarms", 1);
        if !self.labels.is_empty() {
            telemetry::counter_with("monitor.alarms", &self.labels, 1);
        }
        self.emit_alarm_event(&alarm);
        self.alarms.push(alarm.clone());
        Some(alarm)
    }

    /// Emits the alarm telemetry event, shaped like the legacy
    /// monitor's events for legacy-equivalent configurations.
    fn emit_alarm_event(&self, alarm: &PipelineAlarm) {
        let primary = alarm
            .verdicts
            .iter()
            .find(|v| v.suspected)
            .or_else(|| alarm.verdicts.first());
        let Some(primary) = primary else {
            return;
        };
        match alarm.domain {
            DetectorDomain::PerEncryption => telemetry::event(
                "alarm",
                &[
                    ("kind", FieldValue::from("time_domain")),
                    ("correlation_id", FieldValue::U64(alarm.correlation_id)),
                    ("trace_index", FieldValue::U64(alarm.index)),
                    ("distance", FieldValue::F64(primary.score.statistic)),
                    ("threshold", FieldValue::F64(primary.score.threshold)),
                ],
            ),
            DetectorDomain::ContinuousWindow => {
                if let crate::detector::ScoreDetail::Spectral { anomalies } = &primary.score.detail
                {
                    if let Some(top) = anomalies.first() {
                        telemetry::event(
                            "alarm",
                            &[
                                ("kind", FieldValue::from("spectral")),
                                ("correlation_id", FieldValue::U64(alarm.correlation_id)),
                                ("frequency_hz", FieldValue::F64(top.frequency_hz)),
                                ("spot_count", FieldValue::U64(anomalies.len() as u64)),
                            ],
                        );
                        return;
                    }
                }
                telemetry::event(
                    "alarm",
                    &[
                        ("kind", FieldValue::from(primary.detector)),
                        ("correlation_id", FieldValue::U64(alarm.correlation_id)),
                        ("window_index", FieldValue::U64(alarm.index)),
                        ("statistic", FieldValue::F64(primary.score.statistic)),
                        ("threshold", FieldValue::F64(primary.score.threshold)),
                    ],
                )
            }
        }
    }

    /// Counts, votes, fuses, and absorbs one scored trace. Shared by
    /// the checked and strict paths; does not touch the health tracker.
    /// The returned decision record (built only when forensics or a
    /// recorder is active) still needs health info before committing.
    fn settle_scored(
        &mut self,
        frame: &FeatureFrame<'_>,
        scores: Vec<Score>,
    ) -> (
        u64,
        Vec<DetectorVerdict>,
        Option<PipelineAlarm>,
        Option<DecisionRecord>,
    ) {
        let index = self.traces_seen;
        self.traces_seen += 1;
        telemetry::counter("monitor.traces", 1);
        if !self.labels.is_empty() {
            telemetry::counter_with("monitor.traces", &self.labels, 1);
        }
        if let Some(s) = scores.first() {
            telemetry::observe("monitor.distance", s.statistic);
        }
        let votes = self.votes_for(DetectorDomain::PerEncryption, &scores);
        let digest = self
            .forensics_active()
            .then(|| FrameDigest::of(frame.samples()));
        self.absorb_hooks(DetectorDomain::PerEncryption, frame, &scores);
        let alarm = self.fuse(DetectorDomain::PerEncryption, index, &votes);
        let rec = digest.map(|digest| {
            let rec = self.scored_decision("trace", index, &votes, alarm.as_ref(), digest);
            self.emit_labeled_votes(DetectorDomain::PerEncryption, &rec.detectors);
            rec
        });
        (index, votes, alarm, rec)
    }

    /// Turns one screened trace into its outcome: counters, fusion,
    /// alarm bookkeeping, health — the serial tail of the sanitized
    /// paths.
    fn absorb_trace(&mut self, screened: ScreenedTrace<'_>) -> TraceOutcome {
        let (verdict, index, votes, alarm, rec) = match (screened.verdict, screened.scored) {
            (TraceVerdict::Rejected { reason }, _) => {
                self.record_rejected(&reason);
                let rec = self
                    .forensics_active()
                    .then(|| self.rejected_decision("trace", &reason));
                (
                    TraceVerdict::Rejected { reason },
                    None,
                    Vec::new(),
                    None,
                    rec,
                )
            }
            (v, Some(Ok((frame, scores)))) => {
                if v.is_degraded() {
                    self.traces_degraded += 1;
                    telemetry::counter("monitor.trace_degraded", 1);
                }
                let (index, votes, alarm, mut rec) = self.settle_scored(&frame, scores);
                if let Some(r) = &mut rec {
                    r.verdict = if v.is_degraded() { "degraded" } else { "clean" }.to_string();
                }
                (v, Some(index), votes, alarm, rec)
            }
            (_, Some(Err(e))) => {
                let reason = Self::evaluation_defect(&e);
                self.record_rejected(&reason);
                let rec = self
                    .forensics_active()
                    .then(|| self.rejected_decision("trace", &reason));
                (
                    TraceVerdict::Rejected { reason },
                    None,
                    Vec::new(),
                    None,
                    rec,
                )
            }
            // A non-rejected trace with no scoring outcome cannot be
            // produced by the entry points; treat it as unscoreable.
            (_, None) => {
                let reason = TraceDefect::EvaluationFailed;
                self.record_rejected(&reason);
                let rec = self
                    .forensics_active()
                    .then(|| self.rejected_decision("trace", &reason));
                (
                    TraceVerdict::Rejected { reason },
                    None,
                    Vec::new(),
                    None,
                    rec,
                )
            }
        };
        let transitions_before = self.health.transitions().len();
        let health = self.health.observe(verdict.is_rejected());
        if let Some(mut rec) = rec {
            rec.health_transition = self.transition_since(transitions_before);
            self.commit_decision(rec);
        }
        TraceOutcome {
            verdict,
            index,
            votes,
            alarm,
            health,
        }
    }

    // ---------------------------------------------------------------
    // Per-encryption entry points.
    // ---------------------------------------------------------------

    /// Ingests one trace through the sanitized path: screen, featurize
    /// once, score every per-encryption detector, fuse, update health.
    /// Never fails — traces that cannot be scored come back
    /// [`TraceVerdict::Rejected`].
    pub fn ingest_trace(&mut self, samples: &[f64]) -> TraceOutcome {
        let _span = telemetry::span("ingest_checked");
        let screened = self.screen_and_score(samples);
        self.absorb_trace(screened)
    }

    /// Ingests one trace strictly: no sanitizer screening, and any
    /// featurization or scoring failure is returned with the pipeline
    /// left unchanged.
    ///
    /// # Errors
    ///
    /// Forwarded featurization/scoring errors (wrong trace length,
    /// unfitted detector).
    pub fn try_ingest_trace(&mut self, samples: &[f64]) -> Result<TraceOutcome, TrustError> {
        let (frame, scores) = self.featurize_and_score(samples, None, None)?;
        let (index, votes, alarm, rec) = self.settle_scored(&frame, scores);
        if let Some(rec) = rec {
            self.commit_decision(rec);
        }
        Ok(TraceOutcome {
            verdict: TraceVerdict::Clean,
            index: Some(index),
            votes,
            alarm,
            health: self.health.state(),
        })
    }

    /// Ingests a batch through the sanitized path. The pure stages
    /// (screen, featurize, score) fan across the worker pool with a
    /// chunk layout independent of the worker count; outcomes are
    /// absorbed serially in trace order, so the result is exactly what
    /// [`Self::ingest_trace`] on each trace in order would produce.
    pub fn ingest_batch(&mut self, traces: &[Vec<f64>]) -> BatchOutcome {
        let _span = telemetry::span("ingest_batch_report");
        let screened: Vec<ScreenedTrace<'_>> = self
            .parallel
            .map(traces.len(), |i| self.screen_and_score(&traces[i]));
        let mut outcomes = Vec::with_capacity(traces.len());
        let mut alarms = Vec::new();
        for s in screened {
            let outcome = self.absorb_trace(s);
            if let Some(a) = &outcome.alarm {
                alarms.push(a.clone());
            }
            outcomes.push(outcome);
        }
        BatchOutcome { outcomes, alarms }
    }

    /// Ingests a batch strictly: featurization and scoring fan across
    /// the worker pool, and any failure aborts the whole batch with the
    /// pipeline left unchanged (the lowest-indexed failing chunk's
    /// error is returned, like every parallel path in the workspace).
    ///
    /// # Errors
    ///
    /// Forwarded featurization/scoring errors.
    pub fn try_ingest_batch(&mut self, traces: &[Vec<f64>]) -> Result<BatchOutcome, TrustError> {
        let _span = telemetry::span("ingest_batch");
        let scored: Vec<(FeatureFrame<'_>, Vec<Score>)> =
            self.parallel.try_map(traces.len(), |i| {
                self.featurize_and_score(&traces[i], None, None)
            })?;
        let mut outcomes = Vec::with_capacity(traces.len());
        let mut alarms = Vec::new();
        for (frame, scores) in scored {
            let (index, votes, alarm, rec) = self.settle_scored(&frame, scores);
            if let Some(rec) = rec {
                self.commit_decision(rec);
            }
            if let Some(a) = &alarm {
                alarms.push(a.clone());
            }
            outcomes.push(TraceOutcome {
                verdict: TraceVerdict::Clean,
                index: Some(index),
                votes,
                alarm,
                health: self.health.state(),
            });
        }
        Ok(BatchOutcome { outcomes, alarms })
    }

    // ---------------------------------------------------------------
    // Continuous-window entry points.
    // ---------------------------------------------------------------

    /// Screens a continuous window: structural checks without the
    /// per-encryption length gate, plus the sample-rate gate when a
    /// reference-based spectral detector pins the rate.
    fn screen_window(&self, window: &VoltageTrace) -> TraceVerdict {
        let Some(s) = &self.sanitizer else {
            return TraceVerdict::Clean;
        };
        let windowed = TraceSanitizer::new(SanitizerConfig {
            expected_len: None,
            ..s.config()
        });
        let mut v = windowed.inspect(window.samples());
        if !v.is_rejected() {
            if let Some(expected_hz) = self.welch_spec().and_then(|w| w.expected_rate_hz) {
                let actual_hz = window.sample_rate_hz();
                if (actual_hz - expected_hz).abs() > 1e-6 * expected_hz {
                    v = TraceVerdict::Rejected {
                        reason: TraceDefect::SampleRateMismatch {
                            expected_hz,
                            actual_hz,
                        },
                    };
                }
            }
        }
        v
    }

    /// The raw window pass: featurize the spectrum once, score every
    /// window detector. Returns `Ok(None)` when no window detector is
    /// registered (the window is not counted).
    fn window_pass(&mut self, window: &VoltageTrace) -> Result<Option<WindowOutcome>, TrustError> {
        let _span = telemetry::span("ingest_window");
        if !self
            .detectors
            .iter()
            .any(|d| d.domain() == DetectorDomain::ContinuousWindow)
        {
            return Ok(None);
        }
        let spec = self.welch_spec().ok_or(TrustError::InvalidParameter {
            what: "no Welch-spec provider registered for the feature plan",
        })?;
        if let Some(expected_hz) = spec.expected_rate_hz {
            if (window.sample_rate_hz() - expected_hz).abs() > 1e-6 * expected_hz {
                return Err(TrustError::InvalidParameter {
                    what: "suspect sample rate must match the golden trace",
                });
            }
        }
        let spectrum = Spectrum::welch(
            window.samples(),
            window.sample_rate_hz(),
            spec.window,
            spec.segments,
        )?;
        let mut frame = FeatureFrame::window(window.samples(), window.sample_rate_hz());
        frame.set_spectrum(spectrum);
        let scores = self
            .detectors
            .iter()
            .filter(|d| d.domain() == DetectorDomain::ContinuousWindow)
            .map(|d| d.score(&frame))
            .collect::<Result<Vec<_>, _>>()?;
        let index = self.windows_seen;
        self.windows_seen += 1;
        telemetry::counter("monitor.windows", 1);
        if !self.labels.is_empty() {
            telemetry::counter_with("monitor.windows", &self.labels, 1);
        }
        let votes = self.votes_for(DetectorDomain::ContinuousWindow, &scores);
        let digest = self
            .forensics_active()
            .then(|| FrameDigest::of(window.samples()));
        self.absorb_hooks(DetectorDomain::ContinuousWindow, &frame, &scores);
        let alarm = self.fuse(DetectorDomain::ContinuousWindow, index, &votes);
        if let Some(digest) = digest {
            let mut rec = self.scored_decision("window", index, &votes, alarm.as_ref(), digest);
            self.emit_labeled_votes(DetectorDomain::ContinuousWindow, &rec.detectors);
            rec.health_transition = self.pending_window_transition.take();
            self.commit_decision(rec);
        }
        Ok(Some(WindowOutcome {
            verdict: TraceVerdict::Clean,
            index: Some(index),
            votes,
            alarm,
            health: self.health.state(),
        }))
    }

    /// Ingests a continuous window through the sanitized path:
    /// structural screening and the sample-rate gate, then the shared
    /// spectral pass. Rejected windows skip scoring, feed the health
    /// tracker, and never alarm. Never fails.
    pub fn ingest_window(&mut self, window: &VoltageTrace) -> WindowOutcome {
        let _span = telemetry::span("ingest_window_checked");
        let verdict = self.screen_window(window);
        if let TraceVerdict::Rejected { reason } = &verdict {
            let reason = *reason;
            self.record_window_rejected(&reason);
            let transitions_before = self.health.transitions().len();
            let health = self.health.observe(true);
            if self.forensics_active() {
                let mut rec = self.rejected_decision("window", &reason);
                rec.health_transition = self.transition_since(transitions_before);
                self.commit_decision(rec);
            }
            return WindowOutcome {
                verdict,
                index: None,
                votes: Vec::new(),
                alarm: None,
                health,
            };
        }
        let transitions_before = self.health.transitions().len();
        let health = self.health.observe(false);
        self.pending_window_transition = self.transition_since(transitions_before);
        match self.window_pass(window) {
            Ok(Some(mut outcome)) => {
                outcome.verdict = verdict;
                outcome.health = health;
                outcome
            }
            Ok(None) => {
                self.pending_window_transition = None;
                WindowOutcome {
                    verdict,
                    index: None,
                    votes: Vec::new(),
                    alarm: None,
                    health,
                }
            }
            // The pre-checks cover every scoring error the registered
            // detectors can currently raise; anything new still
            // degrades cleanly.
            Err(_) => {
                let reason = TraceDefect::EvaluationFailed;
                self.record_window_rejected(&reason);
                if self.forensics_active() {
                    let mut rec = self.rejected_decision("window", &reason);
                    rec.health_transition = self.pending_window_transition.take();
                    self.commit_decision(rec);
                }
                WindowOutcome {
                    verdict: TraceVerdict::Rejected { reason },
                    index: None,
                    votes: Vec::new(),
                    alarm: None,
                    health,
                }
            }
        }
    }

    /// Ingests a continuous window strictly: no screening, and any
    /// featurization or scoring failure is returned with the pipeline
    /// left unchanged. `Ok` with empty votes when no window detector is
    /// registered.
    ///
    /// # Errors
    ///
    /// Forwarded featurization/scoring errors (sample-rate mismatch,
    /// too-short window).
    pub fn try_ingest_window(
        &mut self,
        window: &VoltageTrace,
    ) -> Result<WindowOutcome, TrustError> {
        match self.window_pass(window)? {
            Some(outcome) => Ok(outcome),
            None => Ok(WindowOutcome {
                verdict: TraceVerdict::Clean,
                index: None,
                votes: Vec::new(),
                alarm: None,
                health: self.health.state(),
            }),
        }
    }

    // ---------------------------------------------------------------
    // Accessors.
    // ---------------------------------------------------------------

    /// All fused alarms raised so far, in order.
    pub fn alarms(&self) -> &[PipelineAlarm] {
        &self.alarms
    }

    /// Clears the alarm log.
    pub fn acknowledge_alarms(&mut self) {
        self.alarms.clear();
    }

    /// Number of per-encryption traces scored (rejected traces are
    /// excluded — see [`Self::traces_rejected`]).
    pub fn traces_seen(&self) -> u64 {
        self.traces_seen
    }

    /// Number of traces the sanitizer rejected.
    pub fn traces_rejected(&self) -> u64 {
        self.traces_rejected
    }

    /// Number of traces scored despite mild defects.
    pub fn traces_degraded(&self) -> u64 {
        self.traces_degraded
    }

    /// Number of continuous windows scored.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Number of continuous windows the sanitizer rejected.
    pub fn windows_rejected(&self) -> u64 {
        self.windows_rejected
    }

    /// Total traces offered to the pipeline, scored or rejected.
    pub fn traces_ingested(&self) -> u64 {
        self.traces_seen + self.traces_rejected
    }

    /// Fraction of scored traces whose fused per-encryption decision
    /// alarmed.
    pub fn alarm_rate(&self) -> f64 {
        if self.traces_seen == 0 {
            return 0.0;
        }
        let fused = self
            .alarms
            .iter()
            .filter(|a| a.domain == DetectorDomain::PerEncryption)
            .count();
        fused as f64 / self.traces_seen as f64
    }

    /// Current sensor-health judgement.
    pub fn health(&self) -> SensorHealth {
        self.health.state()
    }

    /// The health tracker (rejection-rate EWMA, transition log).
    pub fn health_tracker(&self) -> &HealthTracker {
        &self.health
    }

    /// Length of the current unbroken run of rejected traces — the
    /// quarantine signal the fleet's per-chip circuit breaker trips on
    /// (see [`HealthTracker::consecutive_rejections`]).
    pub fn consecutive_rejections(&self) -> u64 {
        self.health.consecutive_rejections()
    }

    /// The installed sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&TraceSanitizer> {
        self.sanitizer.as_ref()
    }

    /// The worker-pool configuration batch paths fan across.
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// The bounded label set stamped on this pipeline's metrics and
    /// decision records (empty unless configured at build time).
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Whether a local forensics store (decision log + flight recorder)
    /// was configured at build time.
    pub fn forensics_enabled(&self) -> bool {
        self.forensics.is_some()
    }

    /// Decision records retained locally, oldest first (empty unless
    /// forensics was configured).
    pub fn decisions(&self) -> &[DecisionRecord] {
        self.forensics.as_ref().map_or(&[], |f| &f.decisions)
    }

    /// Decision records dropped after the local log filled.
    pub fn decisions_dropped(&self) -> u64 {
        self.forensics.as_ref().map_or(0, |f| f.decisions_dropped)
    }

    /// Sealed alarm flight windows, oldest first (empty unless
    /// forensics was configured).
    pub fn flight_windows(&self) -> &[FlightWindow] {
        self.forensics.as_ref().map_or(&[], |f| f.flight.windows())
    }

    /// Seals every still-open flight window (call at end of campaign so
    /// windows whose post-context never filled become visible).
    pub fn seal_flight_windows(&mut self) {
        if let Some(f) = &mut self.forensics {
            f.flight.flush();
        }
    }

    /// Flight windows dropped after the recorder's window cap filled.
    pub fn flight_windows_dropped(&self) -> u64 {
        self.forensics
            .as_ref()
            .map_or(0, |f| f.flight.windows_dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::TraceSet;
    use crate::detector::EuclideanDetector;
    use crate::fingerprint::{FingerprintConfig, GoldenFingerprint};
    use emtrust_telemetry::FlightRecorderConfig;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TraceSet::new(
            (0..n)
                .map(|_| {
                    (0..256)
                        .map(|j| {
                            amplitude * ((j as f64 / 9.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                        })
                        .collect()
                })
                .collect(),
            640e6,
        )
        .unwrap()
    }

    fn euclidean_pipeline() -> DetectionPipeline {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp)))
            .build()
    }

    #[test]
    fn config_built_pipeline_is_bit_identical_to_hand_wired() {
        use crate::learned::{LearnedConfig, LearnedDetector};
        let golden = synthetic_set(32, 1.0, 1);
        let ctx = GoldenContext::new().with_traces(&golden);
        let configs = [
            DetectorConfig::Euclidean(FingerprintConfig::default()),
            DetectorConfig::Learned(LearnedConfig::default()),
        ];
        let mut by_config = DetectionPipeline::from_configs(&configs, FusionPolicy::Or).unwrap();
        let mut by_hand = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::from_config(
                FingerprintConfig::default(),
            )))
            .detector(Box::new(LearnedDetector::from_config(
                LearnedConfig::default(),
            )))
            .fusion(FusionPolicy::Or)
            .build();
        assert_eq!(by_config.detector_names(), by_hand.detector_names());
        by_config.fit(&ctx).unwrap();
        by_hand.fit(&ctx).unwrap();
        let probes: Vec<Vec<f64>> = synthetic_set(6, 1.0, 2)
            .traces()
            .iter()
            .chain(synthetic_set(2, 1.4, 3).traces())
            .cloned()
            .collect();
        for t in &probes {
            let a = by_config.try_ingest_trace(t).unwrap();
            let b = by_hand.try_ingest_trace(t).unwrap();
            assert_eq!(a.votes, b.votes, "scores must match bit for bit");
            assert_eq!(a.alarm.is_some(), b.alarm.is_some());
        }
        // An invalid config is rejected at build, not detection, time.
        let bad = DetectorConfig::Learned(LearnedConfig {
            decision_probability: 0.0,
            ..LearnedConfig::default()
        });
        assert!(bad.build().is_err());
        assert!(DetectionPipeline::builder().detector_config(&bad).is_err());
        assert_eq!(bad.name(), "learned");
    }

    #[test]
    fn clean_traces_do_not_alarm() {
        let mut p = euclidean_pipeline();
        for t in synthetic_set(8, 1.0, 2).traces() {
            let o = p.try_ingest_trace(t).unwrap();
            assert!(o.alarm.is_none());
            assert_eq!(o.votes.len(), 1);
            assert!(!o.votes[0].suspected);
        }
        assert_eq!(p.traces_seen(), 8);
        assert_eq!(p.alarm_rate(), 0.0);
    }

    #[test]
    fn anomalous_traces_raise_fused_alarms() {
        let mut p = euclidean_pipeline();
        for t in synthetic_set(4, 1.4, 3).traces() {
            let o = p.try_ingest_trace(t).unwrap();
            let alarm = o.alarm.expect("anomaly must alarm");
            assert_eq!(alarm.domain, DetectorDomain::PerEncryption);
            assert_eq!(alarm.verdicts.len(), 1);
            assert!(alarm.verdicts[0].suspected);
        }
        assert!((p.alarm_rate() - 1.0).abs() < 1e-12);
        assert_eq!(p.alarms().len(), 4);
        p.acknowledge_alarms();
        assert!(p.alarms().is_empty());
    }

    #[test]
    fn batch_matches_serial_ingest() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let traces: Vec<Vec<f64>> = synthetic_set(6, 1.0, 2)
            .traces()
            .iter()
            .chain(synthetic_set(2, 1.4, 3).traces())
            .cloned()
            .collect();
        let mut serial = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp.clone())))
            .build();
        let serial_outcomes: Vec<TraceOutcome> = traces
            .iter()
            .map(|t| serial.try_ingest_trace(t).unwrap())
            .collect();
        let mut batched = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp)))
            .build();
        let batch = batched.try_ingest_batch(&traces).unwrap();
        assert_eq!(batch.outcomes, serial_outcomes);
        assert_eq!(serial.alarms(), batched.alarms());
    }

    #[test]
    fn sanitized_path_rejects_without_counting() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let mut p = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp)))
            .sanitizer(TraceSanitizer::default())
            .build();
        // The sanitizer inherited the fit length.
        assert_eq!(p.sanitizer().unwrap().config().expected_len, Some(256));
        let clean = synthetic_set(1, 1.0, 2).traces()[0].clone();
        let o = p.ingest_trace(&clean);
        assert!(o.verdict.is_clean());
        assert!(o.alarm.is_none());
        let mut bad = clean.clone();
        bad[10] = f64::NAN;
        let o = p.ingest_trace(&bad);
        assert!(o.verdict.is_rejected());
        assert!(o.votes.is_empty());
        assert_eq!(o.index, None);
        let o = p.ingest_trace(&clean[..100]);
        assert!(matches!(
            o.verdict,
            TraceVerdict::Rejected {
                reason: TraceDefect::WrongLength { .. }
            }
        ));
        assert_eq!(p.traces_seen(), 1);
        assert_eq!(p.traces_rejected(), 2);
        assert_eq!(p.traces_ingested(), 3);
    }

    #[test]
    fn strict_batch_leaves_state_unchanged_on_error() {
        let mut p = euclidean_pipeline();
        let mut traces = synthetic_set(3, 1.0, 2).traces().to_vec();
        traces[1] = vec![1.0; 10]; // wrong length → projection error
        assert!(p.try_ingest_batch(&traces).is_err());
        assert_eq!(p.traces_seen(), 0);
        assert!(p.alarms().is_empty());
    }

    #[test]
    fn fusion_policy_gates_the_alarm() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let trojan = synthetic_set(1, 1.4, 3).traces()[0].clone();
        // Or: the single suspected vote alarms.
        let mut p = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp.clone())))
            .fusion(FusionPolicy::Or)
            .build();
        assert!(p.try_ingest_trace(&trojan).unwrap().alarm.is_some());
        // Weighted with an unreachable threshold: the same vote cannot.
        let mut p = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp)))
            .fusion(FusionPolicy::Weighted {
                weights: vec![1.0],
                threshold: 2.0,
            })
            .build();
        let o = p.try_ingest_trace(&trojan).unwrap();
        assert!(o.votes[0].suspected, "the detector still votes suspected");
        assert!(o.alarm.is_none(), "fusion withholds the alarm");
    }

    #[test]
    fn pipeline_fit_refits_every_detector() {
        let golden = synthetic_set(32, 1.0, 1);
        let mut p = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::from_config(
                FingerprintConfig::default(),
            )))
            .build();
        assert!(!p.is_fitted());
        assert!(p.try_ingest_trace(&golden.traces()[0]).is_err());
        p.fit(&GoldenContext::new().with_traces(&golden)).unwrap();
        assert!(p.is_fitted());
        assert!(p.projector().is_some());
        assert!(p
            .try_ingest_trace(&synthetic_set(1, 1.0, 2).traces()[0])
            .is_ok());
    }

    fn forensic_pipeline(config: ForensicsConfig) -> DetectionPipeline {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp)))
            .sanitizer(TraceSanitizer::default())
            .labels(LabelSet::new().with("chip_id", "chip-7"))
            .forensics(config)
            .build()
    }

    #[test]
    fn forensics_logs_scored_and_rejected_decisions() {
        let mut p = forensic_pipeline(ForensicsConfig::default());
        let clean = synthetic_set(3, 1.0, 2);
        for t in clean.traces() {
            p.ingest_trace(t);
        }
        let mut bad = clean.traces()[0].clone();
        bad[5] = f64::NAN;
        p.ingest_trace(&bad);
        for t in synthetic_set(2, 1.4, 3).traces() {
            p.ingest_trace(t);
        }
        let recs = p.decisions();
        assert_eq!(recs.len(), 6);
        for r in &recs[..3] {
            assert_eq!(r.domain, "trace");
            assert_eq!(r.verdict, "clean");
            assert!(!r.fused_alarm);
            assert!(r.correlation_id.is_none());
            assert_eq!(r.detectors.len(), 1);
            assert!(r.detectors[0].margin < 0.0, "clean margin must be < 0");
            assert_eq!(r.labels.get("chip_id"), Some("chip-7"));
            assert!(r.digest.is_some());
        }
        assert_eq!(recs[3].verdict, "rejected");
        assert_eq!(recs[3].reject_reason.as_deref(), Some("non_finite"));
        assert!(recs[3].detectors.is_empty());
        for (r, a) in recs[4..].iter().zip(p.alarms()) {
            assert!(r.fused_alarm);
            assert!(r.detectors[0].suspected);
            assert!(r.detectors[0].margin > 0.0, "alarm margin must be > 0");
            assert_eq!(r.correlation_id, Some(a.correlation_id));
        }
        assert_eq!(p.decisions_dropped(), 0);
    }

    #[test]
    fn flight_recorder_freezes_context_around_the_alarm() {
        let mut p = forensic_pipeline(ForensicsConfig {
            flight: FlightRecorderConfig {
                pre: 2,
                post: 1,
                max_windows: 4,
            },
            ..ForensicsConfig::default()
        });
        let clean = synthetic_set(3, 1.0, 2);
        for t in clean.traces() {
            p.ingest_trace(t);
        }
        p.ingest_trace(&synthetic_set(1, 1.4, 3).traces()[0]);
        p.ingest_trace(&clean.traces()[0]); // fills the post-context
        let windows = p.flight_windows();
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.records.len(), 4, "2 pre + trigger + 1 post");
        assert_eq!(w.trigger, 2);
        let trigger = w.trigger_record().expect("trigger record");
        assert!(trigger.fused_alarm);
        assert_eq!(w.correlation_id, p.alarms()[0].correlation_id);
        assert_eq!(trigger.correlation_id, Some(w.correlation_id));
        assert!(!w.records[0].fused_alarm, "pre-context is clean");
    }

    #[test]
    fn seal_exposes_windows_with_unfilled_post_context() {
        let mut p = forensic_pipeline(ForensicsConfig::default());
        for t in synthetic_set(2, 1.0, 2).traces() {
            p.ingest_trace(t);
        }
        // Alarm as the very last observation: no post-context follows.
        p.ingest_trace(&synthetic_set(1, 1.4, 3).traces()[0]);
        assert!(p.flight_windows().is_empty());
        p.seal_flight_windows();
        assert_eq!(p.flight_windows().len(), 1);
        assert!(p.flight_windows()[0]
            .trigger_record()
            .is_some_and(|r| r.fused_alarm));
    }

    #[test]
    fn health_transitions_land_in_decision_records() {
        let mut p = forensic_pipeline(ForensicsConfig::default());
        let mut bad = synthetic_set(1, 1.0, 2).traces()[0].clone();
        bad[0] = f64::NAN;
        for _ in 0..10 {
            p.ingest_trace(&bad);
        }
        let transitions: Vec<_> = p
            .decisions()
            .iter()
            .filter_map(|r| r.health_transition.clone())
            .collect();
        assert!(
            transitions.contains(&("healthy".to_string(), "degraded".to_string())),
            "sustained rejections must record the healthy→degraded edge"
        );
        let last = p.decisions().last().expect("records kept");
        assert_eq!(last.health, p.health().label());
    }
}
