//! The golden fingerprint and the paper's Eq. 1 decision rule.

use crate::acquisition::TraceSet;
use crate::features::{bin_rms, l2_norm, DEFAULT_RMS_BIN};
use crate::parallel::ParallelConfig;
use crate::TrustError;
use emtrust_dsp::distance;
use emtrust_dsp::pca::Pca;
use emtrust_telemetry as telemetry;

/// Configuration of the fingerprinting front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintConfig {
    /// Samples per RMS feature bin.
    pub rms_bin: usize,
    /// Retained PCA components; `None` disables PCA (the paper's §III-D
    /// recommends it; the ablation bench measures its effect).
    pub pca_components: Option<usize>,
    /// Threshold head-room multiplier on Eq. 1 (1.0 = the literal paper
    /// rule).
    pub threshold_margin: f64,
    /// Parallel execution policy for fitting and batch evaluation. Only
    /// affects wall-clock time: per-trace work and the `f64::max`
    /// threshold reduction are bit-identical for every worker count.
    pub parallel: ParallelConfig,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        Self {
            rms_bin: DEFAULT_RMS_BIN,
            pca_components: Some(8),
            threshold_margin: 1.0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Verdict on one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Euclidean distance to the golden centroid (dimensionless — traces
    /// are scale-normalized by the golden set's magnitude).
    pub distance: f64,
    /// The Eq. 1 threshold in effect.
    pub threshold: f64,
    /// Whether the distance exceeds the threshold.
    pub trojan_suspected: bool,
}

/// The golden (Trojan-free) fingerprint of a chip.
#[derive(Debug, Clone)]
pub struct GoldenFingerprint {
    config: FingerprintConfig,
    /// Scale divisor: mean feature-vector norm of the golden set.
    scale: f64,
    pca: Option<Pca>,
    /// Golden observations in detection space.
    golden: Vec<Vec<f64>>,
    centroid: Vec<f64>,
    threshold: f64,
    /// Sample count of the golden traces (every suspect must match).
    trace_len: usize,
}

impl GoldenFingerprint {
    /// Fits the fingerprint on a golden trace set.
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if fewer than two traces are
    ///   supplied or the configuration is degenerate,
    /// - forwarded DSP errors from PCA/distance computation.
    pub fn fit(golden: &TraceSet, config: FingerprintConfig) -> Result<Self, TrustError> {
        let _span = telemetry::span("fit");
        if golden.len() < 2 {
            return Err(TrustError::InvalidParameter {
                what: "fingerprint needs at least two golden traces",
            });
        }
        if config.threshold_margin <= 0.0 {
            return Err(TrustError::InvalidParameter {
                what: "threshold margin must be positive",
            });
        }
        // Feature extraction, one trace per work item.
        let traces = golden.traces();
        let raw: Vec<Vec<f64>> = {
            let _span = telemetry::span("features");
            config
                .parallel
                .try_map(traces.len(), |i| bin_rms(&traces[i], config.rms_bin))?
        };
        // Scale normalization: golden magnitude becomes O(1) so distances
        // are dimensionless (comparable to the paper's 0.05–0.28 range).
        let scale = raw.iter().map(|f| l2_norm(f)).sum::<f64>() / raw.len() as f64;
        if scale == 0.0 {
            return Err(TrustError::InvalidParameter {
                what: "golden traces contain no energy",
            });
        }
        let scaled: Vec<Vec<f64>> = raw
            .iter()
            .map(|f| f.iter().map(|x| x / scale).collect())
            .collect();
        // Optional PCA on the scaled features.
        let (pca, projected) = match config.pca_components {
            Some(k) => {
                let _span = telemetry::span("project");
                let k = k.min(scaled[0].len());
                let pca = Pca::fit(&scaled, k)?;
                let projected = config
                    .parallel
                    .try_map(scaled.len(), |i| -> Result<_, TrustError> {
                        Ok(pca.project(&scaled[i])?)
                    })?;
                (Some(pca), projected)
            }
            None => (None, scaled),
        };
        let centroid = distance::centroid(&projected)?;
        // The O(n²) Eq. 1 pair scan, row-fanned across the pool.
        let threshold = {
            let _span = telemetry::span("threshold_scan");
            distance::eq1_threshold_with(
                &projected,
                config.parallel.workers,
                config.parallel.chunk_size,
            )? * config.threshold_margin
        };
        telemetry::gauge("fingerprint.threshold", threshold);
        Ok(Self {
            config,
            scale,
            pca,
            golden: projected,
            centroid,
            threshold,
            trace_len: traces.first().map_or(0, Vec::len),
        })
    }

    /// Extracts the raw RMS energy features of a trace (the first stage
    /// of [`Self::project`]). The detection pipeline computes this once
    /// per trace and shares the result between the sanitizer's energy
    /// screen and the distance scorer.
    ///
    /// # Errors
    ///
    /// Forwarded feature-extraction errors (empty trace).
    pub fn features(&self, samples: &[f64]) -> Result<Vec<f64>, TrustError> {
        bin_rms(samples, self.config.rms_bin)
    }

    /// Maps pre-computed RMS features into detection space (scale
    /// normalization, then the optional PCA projection) — the second
    /// stage of [`Self::project`].
    ///
    /// # Errors
    ///
    /// Forwarded PCA errors (wrong feature length).
    pub fn project_features(&self, feats: &[f64]) -> Result<Vec<f64>, TrustError> {
        let scaled: Vec<f64> = feats.iter().map(|x| x / self.scale).collect();
        Ok(match &self.pca {
            Some(p) => p.project(&scaled)?,
            None => scaled,
        })
    }

    /// Maps a raw trace into detection space.
    ///
    /// # Errors
    ///
    /// Forwarded feature/PCA errors (wrong trace length, empty trace).
    pub fn project(&self, samples: &[f64]) -> Result<Vec<f64>, TrustError> {
        let feats = self.features(samples)?;
        self.project_features(&feats)
    }

    /// Distance of a detection-space projection to the golden centroid —
    /// the final stage of [`Self::distance`].
    ///
    /// # Errors
    ///
    /// Forwarded distance errors (dimension mismatch).
    pub fn distance_of_projection(&self, projection: &[f64]) -> Result<f64, TrustError> {
        Ok(distance::euclidean(projection, &self.centroid)?)
    }

    /// Distance of a raw trace to the golden centroid.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors.
    pub fn distance(&self, samples: &[f64]) -> Result<f64, TrustError> {
        self.distance_of_projection(&self.project(samples)?)
    }

    /// Evaluates one trace against the Eq. 1 threshold.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors.
    pub fn evaluate(&self, samples: &[f64]) -> Result<Verdict, TrustError> {
        telemetry::counter("fingerprint.evaluations", 1);
        let d = self.distance(samples)?;
        Ok(Verdict {
            distance: d,
            threshold: self.threshold,
            trojan_suspected: d > self.threshold,
        })
    }

    /// Evaluates a batch of traces against the Eq. 1 threshold, fanning
    /// the per-trace work across the configured worker pool.
    ///
    /// Verdicts come back in trace order and each is exactly what
    /// [`Self::evaluate`] returns for that trace — the batch path only
    /// changes wall-clock time, never the result.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (from the lowest-indexed failing
    /// trace).
    pub fn evaluate_batch(&self, traces: &[Vec<f64>]) -> Result<Vec<Verdict>, TrustError> {
        let _span = telemetry::span("evaluate_batch");
        self.config
            .parallel
            .try_map(traces.len(), |i| self.evaluate(&traces[i]))
    }

    /// Evaluates a batch of traces, reporting each trace's outcome
    /// individually instead of aborting on the first failure. The
    /// hardened monitor ingestion path uses this so one corrupted trace
    /// cannot shadow the verdicts of its batch-mates.
    pub fn evaluate_each<T: AsRef<[f64]> + Sync>(
        &self,
        traces: &[T],
    ) -> Vec<Result<Verdict, TrustError>> {
        let _span = telemetry::span("evaluate_each");
        let wrapped: Result<Vec<_>, std::convert::Infallible> = self
            .config
            .parallel
            .try_map(traces.len(), |i| Ok(self.evaluate(traces[i].as_ref())));
        match wrapped {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Distances of every trace in a set to the golden centroid, fanned
    /// across the configured worker pool (trace order preserved).
    ///
    /// # Errors
    ///
    /// Forwarded projection errors.
    pub fn set_distances(&self, set: &TraceSet) -> Result<Vec<f64>, TrustError> {
        let traces = set.traces();
        self.config
            .parallel
            .try_map(traces.len(), |i| self.distance(&traces[i]))
    }

    /// The paper's §IV-C scalar: Euclidean distance between the golden
    /// centroid and the suspect set's centroid, in detection space.
    ///
    /// # Errors
    ///
    /// Forwarded projection/centroid errors.
    pub fn centroid_distance(&self, suspect: &TraceSet) -> Result<f64, TrustError> {
        let projected: Vec<Vec<f64>> = suspect
            .traces()
            .iter()
            .map(|t| self.project(t))
            .collect::<Result<_, _>>()?;
        let c = distance::centroid(&projected)?;
        Ok(distance::euclidean(&c, &self.centroid)?)
    }

    /// Pairwise distances within the golden set (the red histograms of
    /// Fig. 6).
    ///
    /// # Errors
    ///
    /// Forwarded distance errors.
    pub fn golden_pairwise(&self) -> Result<Vec<f64>, TrustError> {
        Ok(distance::pairwise_distances_with(
            &self.golden,
            self.config.parallel.workers,
            self.config.parallel.chunk_size,
        )?)
    }

    /// Cross distances between the golden set and a suspect set (the blue
    /// histograms of Fig. 6).
    ///
    /// # Errors
    ///
    /// Forwarded projection/distance errors.
    pub fn cross_distances(&self, suspect: &TraceSet) -> Result<Vec<f64>, TrustError> {
        let projected: Vec<Vec<f64>> = suspect
            .traces()
            .iter()
            .map(|t| self.project(t))
            .collect::<Result<_, _>>()?;
        Ok(distance::cross_distances(&self.golden, &projected)?)
    }

    /// Feature-energy ratio of a raw trace relative to the golden scale
    /// (clean traces sit near 1.0). The sanitizer's energy screen uses
    /// this to catch gain faults before distance scoring.
    ///
    /// # Errors
    ///
    /// Forwarded feature-extraction errors.
    pub fn energy_ratio(&self, samples: &[f64]) -> Result<f64, TrustError> {
        let feats = self.features(samples)?;
        Ok(self.energy_ratio_of_features(&feats))
    }

    /// Feature-energy ratio of pre-computed RMS features relative to the
    /// golden scale ([`Self::energy_ratio`] with the extraction stage
    /// already done).
    pub fn energy_ratio_of_features(&self, feats: &[f64]) -> f64 {
        l2_norm(feats) / self.scale
    }

    /// The scale divisor (mean golden feature-vector norm) that makes
    /// distances dimensionless.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Sample count of the golden traces the fingerprint was fitted on.
    pub fn expected_trace_len(&self) -> usize {
        self.trace_len
    }

    /// The Eq. 1 threshold in effect (margin applied).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> FingerprintConfig {
        self.config
    }

    /// Number of golden observations.
    pub fn golden_count(&self) -> usize {
        self.golden.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let traces: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..256)
                    .map(|j| amplitude * ((j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0)))
                    .collect()
            })
            .collect();
        TraceSet::new(traces, 640e6).unwrap()
    }

    #[test]
    fn golden_traces_stay_under_threshold() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let fresh = synthetic_set(8, 1.0, 2);
        for t in fresh.traces() {
            let v = fp.evaluate(t).unwrap();
            assert!(
                !v.trojan_suspected,
                "false alarm: d={} th={}",
                v.distance, v.threshold
            );
        }
    }

    #[test]
    fn amplitude_anomalies_are_flagged() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let trojan = synthetic_set(4, 1.3, 3);
        for t in trojan.traces() {
            assert!(fp.evaluate(t).unwrap().trojan_suspected);
        }
    }

    #[test]
    fn centroid_distance_grows_with_anomaly_size() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let small = fp.centroid_distance(&synthetic_set(16, 1.02, 4)).unwrap();
        let large = fp.centroid_distance(&synthetic_set(16, 1.3, 5)).unwrap();
        assert!(large > 3.0 * small, "small {small} large {large}");
    }

    #[test]
    fn distances_are_dimensionless() {
        // The same data at 1000x the voltage gives the same distances.
        let a = synthetic_set(16, 1.0, 1);
        let b = TraceSet::new(
            a.traces()
                .iter()
                .map(|t| t.iter().map(|x| 1000.0 * x).collect())
                .collect(),
            a.sample_rate_hz(),
        )
        .unwrap();
        let fa = GoldenFingerprint::fit(&a, FingerprintConfig::default()).unwrap();
        let fb = GoldenFingerprint::fit(&b, FingerprintConfig::default()).unwrap();
        assert!((fa.threshold() - fb.threshold()).abs() < 1e-9);
    }

    #[test]
    fn pca_can_be_disabled() {
        let golden = synthetic_set(16, 1.0, 1);
        let cfg = FingerprintConfig {
            pca_components: None,
            ..Default::default()
        };
        let fp = GoldenFingerprint::fit(&golden, cfg).unwrap();
        assert!(
            fp.evaluate(&synthetic_set(1, 1.4, 9).traces()[0])
                .unwrap()
                .trojan_suspected
        );
    }

    #[test]
    fn histogram_materials_have_expected_counts() {
        let golden = synthetic_set(10, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        assert_eq!(fp.golden_pairwise().unwrap().len(), 45);
        let suspect = synthetic_set(5, 1.1, 2);
        assert_eq!(fp.cross_distances(&suspect).unwrap().len(), 50);
        assert_eq!(fp.golden_count(), 10);
    }

    #[test]
    fn degenerate_fits_are_rejected() {
        let one = synthetic_set(1, 1.0, 1);
        assert!(GoldenFingerprint::fit(&one, FingerprintConfig::default()).is_err());
        let golden = synthetic_set(4, 1.0, 1);
        let cfg = FingerprintConfig {
            threshold_margin: 0.0,
            ..Default::default()
        };
        assert!(GoldenFingerprint::fit(&golden, cfg).is_err());
        let silent = TraceSet::new(vec![vec![0.0; 64]; 4], 1.0).unwrap();
        assert!(GoldenFingerprint::fit(&silent, FingerprintConfig::default()).is_err());
    }

    #[test]
    fn staged_helpers_compose_to_the_one_shot_paths() {
        let golden = synthetic_set(16, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let suspect_set = synthetic_set(1, 1.2, 7);
        let t = &suspect_set.traces()[0];
        let feats = fp.features(t).unwrap();
        let projection = fp.project_features(&feats).unwrap();
        assert_eq!(projection, fp.project(t).unwrap());
        assert_eq!(
            fp.distance_of_projection(&projection).unwrap(),
            fp.distance(t).unwrap()
        );
        assert_eq!(
            fp.energy_ratio_of_features(&feats),
            fp.energy_ratio(t).unwrap()
        );
        assert!(fp.scale() > 0.0);
    }

    #[test]
    fn threshold_margin_loosens_detection() {
        let golden = synthetic_set(32, 1.0, 1);
        let tight = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let loose = GoldenFingerprint::fit(
            &golden,
            FingerprintConfig {
                threshold_margin: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        let suspect_set = synthetic_set(1, 1.3, 3);
        let suspect = &suspect_set.traces()[0];
        assert!(tight.evaluate(suspect).unwrap().trojan_suspected);
        assert!(!loose.evaluate(suspect).unwrap().trojan_suspected);
    }
}
