//! Trace acquisition: driving the Trojan-carrying AES chip and measuring
//! it through either the simulation pipeline (paper §IV) or the
//! fabricated-chip pipeline (paper §V).

use crate::parallel::ParallelConfig;
use crate::sanitize::{TraceSanitizer, TraceVerdict};
use crate::TrustError;
use emtrust_aes::netlist::run_encryption_with;
use emtrust_em::coil::Coil;
use emtrust_em::emf::VoltageTrace;
use emtrust_em::pipeline::{EmSensor, PointCurrentSource};
use emtrust_faults::FaultPlan;
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_silicon::{Channel, FabricatedChip, ProcessVariation};
use emtrust_telemetry as telemetry;
use emtrust_trojan::{A2Trojan, ProtectedChip, TrojanKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extra leakage current drawn while Trojan T2's sense bit is low and its
/// trigger is high, in amperes (the PMOS–NMOS leakage path of §IV-A).
pub const T2_LEAK_CURRENT_A: f64 = 2.0e-5;

/// The plaintext stimulus policy during collection.
///
/// The paper's fingerprinting assumes "the users know how the circuit
/// will operate": detection campaigns replay a fixed stimulus so the
/// golden spread reflects only noise, while characterization sweeps may
/// randomize per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// Replay one fixed plaintext block for every trace.
    Fixed([u8; 16]),
    /// Draw a fresh random plaintext per trace (seeded).
    RandomPerTrace,
}

/// A set of equal-length measured traces (volts).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    traces: Vec<Vec<f64>>,
    sample_rate_hz: f64,
}

impl TraceSet {
    /// Wraps raw traces, validating shape and sample values.
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if the sample rate is not
    ///   positive,
    /// - [`TrustError::TraceLengthMismatch`] naming the first trace whose
    ///   length disagrees with the set's,
    /// - [`TrustError::NonFiniteSample`] naming the first NaN/±Inf sample.
    pub fn new(traces: Vec<Vec<f64>>, sample_rate_hz: f64) -> Result<Self, TrustError> {
        let expected = traces.first().map_or(0, Vec::len);
        for (ti, t) in traces.iter().enumerate() {
            if t.len() != expected {
                return Err(TrustError::TraceLengthMismatch {
                    trace: ti,
                    expected,
                    actual: t.len(),
                });
            }
            if let Some(si) = t.iter().position(|x| !x.is_finite()) {
                return Err(TrustError::NonFiniteSample {
                    trace: ti,
                    sample: si,
                });
            }
        }
        Self::from_raw(traces, sample_rate_hz)
    }

    /// Wraps traces that may legitimately carry corrupted samples —
    /// fault-injection campaigns and raw sensor dumps headed for the
    /// sanitizer. Only the sample rate and the shared length are
    /// validated; finiteness is deliberately not.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the traces are ragged or the
    /// sample rate is not positive.
    pub fn from_raw(traces: Vec<Vec<f64>>, sample_rate_hz: f64) -> Result<Self, TrustError> {
        if sample_rate_hz <= 0.0 {
            return Err(TrustError::InvalidParameter {
                what: "sample rate must be positive",
            });
        }
        if let Some(first) = traces.first() {
            if traces.iter().any(|t| t.len() != first.len()) {
                return Err(TrustError::InvalidParameter {
                    what: "traces must share one length",
                });
            }
        }
        Ok(Self {
            traces,
            sample_rate_hz,
        })
    }

    /// The traces.
    pub fn traces(&self) -> &[Vec<f64>] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The acquisition sample rate.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

/// Re-acquisition policy for [`TestBench::collect_robust`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total acquisition attempts per trace, the first included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds; doubles per
    /// retry round (jittered and capped — see [`Self::backoff_us`]).
    /// The bench is simulated, so the wait is *recorded*
    /// (`backoff_total_us`, `acquire.backoff_us`) rather than slept —
    /// a hardware bench would sleep it to let a transient clear.
    pub backoff_base_us: u64,
    /// Ceiling on any single backoff round, in microseconds. Without a
    /// cap the doubling schedule reaches minutes within a dozen rounds;
    /// with one, a long outage costs a bounded, predictable wait per
    /// retry.
    pub backoff_cap_us: u64,
    /// Full jitter fraction in `[0, 1]`: each round's wait is drawn
    /// uniformly from `nominal × [1 − jitter, 1 + jitter)` with a
    /// deterministic RNG keyed on the campaign seed and the attempt, so
    /// replays are bit-identical while concurrent campaigns never
    /// synchronize their retry storms. `0.0` restores the fixed
    /// schedule.
    pub backoff_jitter: f64,
    /// Alternate measurement channel to try for traces still rejected
    /// after every retry (the paper's chips expose both the on-chip
    /// sensor and an external probe).
    pub fallback: Option<Channel>,
    /// Maximum tolerated fraction of finally-rejected traces before the
    /// collection fails with [`TrustError::SensorFault`]. `1.0` never
    /// fails.
    pub max_reject_fraction: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_us: 100,
            backoff_cap_us: 5_000_000,
            backoff_jitter: 0.5,
            fallback: None,
            max_reject_fraction: 1.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry round `attempt` (1-based) of a
    /// campaign keyed by `seed`, in microseconds: exponential doubling
    /// from [`Self::backoff_base_us`], jittered by
    /// [`Self::backoff_jitter`], capped at [`Self::backoff_cap_us`].
    /// Pure in `(policy, attempt, seed)`, so a replayed campaign charges
    /// the exact same schedule.
    pub fn backoff_us(&self, attempt: u32, seed: u64) -> u64 {
        let exp = u64::from(attempt.saturating_sub(1)).min(20);
        let nominal = self.backoff_base_us.saturating_mul(1u64 << exp);
        let jitter = self.backoff_jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return nominal.min(self.backoff_cap_us);
        }
        let mut rng = StdRng::seed_from_u64(
            seed ^ (u64::from(attempt).wrapping_add(1)).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let factor = rng.gen_range((1.0 - jitter)..(1.0 + jitter));
        let jittered = (nominal as f64 * factor).round() as u64;
        jittered.min(self.backoff_cap_us)
    }
}

/// Per-trace outcome of a robust collection.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Trace index within the campaign.
    pub index: usize,
    /// Final sanitizer verdict for the trace that was kept.
    pub verdict: TraceVerdict,
    /// Acquisition attempts spent on this trace (1 = first try passed).
    pub attempts: u32,
    /// Channel the kept trace was measured on.
    pub channel: Channel,
}

/// The result of [`TestBench::collect_robust`]: the kept traces plus a
/// full per-trace accounting of retries and fallbacks.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustCollection {
    /// The kept traces (one per requested index, rejected ones
    /// included — `reports` says which to trust).
    pub set: TraceSet,
    /// Per-trace outcomes, in trace order.
    pub reports: Vec<TraceReport>,
    /// Total re-acquisition attempts across all traces.
    pub retries: u64,
    /// Traces whose kept measurement came from the fallback channel.
    pub fallbacks: u64,
    /// Total backoff the policy charged, in microseconds (recorded, not
    /// slept — see [`RetryPolicy::backoff_base_us`]).
    pub backoff_total_us: u64,
}

impl RobustCollection {
    /// Number of traces whose final verdict is still rejected.
    pub fn rejected(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.verdict.is_rejected())
            .count()
    }
}

/// Which measurement backend the bench uses.
#[derive(Debug)]
enum Backend {
    /// Paper §IV: EM pipeline plus environment noise only.
    Simulation {
        onchip: EmSensor,
        external: EmSensor,
    },
    /// Paper §V: process variation, package and oscilloscope included.
    Silicon(FabricatedChip),
}

/// The assembled experiment: a Trojan-carrying chip, its floorplan, both
/// measurement channels, and (optionally) an A2 analog Trojan.
#[derive(Debug)]
pub struct TestBench<'c> {
    chip: &'c ProtectedChip,
    floorplan: Floorplan,
    backend: Backend,
    clock: ClockConfig,
    a2: Option<A2Trojan>,
    parallel: ParallelConfig,
    faults: Option<FaultPlan>,
}

impl<'c> TestBench<'c> {
    /// Builds the simulation bench (paper §IV): default die, spiral
    /// sensor, external probe, reference clock.
    ///
    /// # Errors
    ///
    /// Propagates layout and EM-pipeline construction errors.
    pub fn simulation(chip: &'c ProtectedChip) -> Result<Self, TrustError> {
        let library = Library::generic_180nm();
        let die = Die::for_netlist(chip.netlist(), &library, 0.7)?;
        let floorplan = Floorplan::place(chip.netlist(), &library, die)?;
        let clock = ClockConfig::reference();
        let model = CurrentModel::new(library, clock);
        let onchip = EmSensor::new(
            Coil::OnChip(SpiralSensor::for_die(die).map_err(TrustError::Layout)?),
            chip.netlist(),
            &floorplan,
            model.clone(),
        )?;
        let external = EmSensor::new(
            Coil::External(ExternalProbe::over_die(die)),
            chip.netlist(),
            &floorplan,
            model,
        )?;
        Ok(Self {
            chip,
            floorplan,
            backend: Backend::Simulation { onchip, external },
            clock,
            a2: None,
            parallel: ParallelConfig::default(),
            faults: None,
        })
    }

    /// Builds the fabricated-chip bench (paper §V) for die number
    /// `chip_id` with nominal process variation.
    ///
    /// # Errors
    ///
    /// Propagates silicon-model construction errors.
    pub fn silicon(chip: &'c ProtectedChip, chip_id: u64) -> Result<Self, TrustError> {
        let fab = FabricatedChip::fabricate(chip.netlist(), chip_id, ProcessVariation::nominal())?;
        let floorplan = fab.floorplan().clone();
        Ok(Self {
            chip,
            floorplan,
            backend: Backend::Silicon(fab),
            clock: ClockConfig::reference(),
            a2: None,
            parallel: ParallelConfig::default(),
            faults: None,
        })
    }

    /// Installs an A2-style analog Trojan. If the Trojan is at the
    /// default origin it is placed near the middle of the core area.
    pub fn with_a2(mut self, a2: A2Trojan) -> Self {
        let placed = if a2.location_um() == (0.0, 0.0) {
            let c = self.floorplan.die().center();
            a2.with_location(c.x * 0.8, c.y * 1.1)
        } else {
            a2
        };
        self.a2 = Some(placed);
        self
    }

    /// Arms or disarms the installed A2 Trojan's fast-flipping trigger.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if no A2 Trojan is installed.
    pub fn arm_a2(&mut self, on: bool) -> Result<(), TrustError> {
        match self.a2.as_mut() {
            Some(a2) => {
                a2.set_triggering(on);
                Ok(())
            }
            None => Err(TrustError::InvalidParameter {
                what: "no A2 trojan installed",
            }),
        }
    }

    /// The chip under test.
    pub fn chip(&self) -> &ProtectedChip {
        self.chip
    }

    /// The floorplan in use.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// The installed A2 Trojan, if any.
    pub fn a2(&self) -> Option<&A2Trojan> {
        self.a2.as_ref()
    }

    /// Sets the parallel execution policy used by the `collect*` methods.
    ///
    /// The policy only affects wall-clock time: every collection result is
    /// bit-identical for every worker count (noise seeds derive from the
    /// campaign seed and the trace index, never from worker identity).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The parallel execution policy.
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// Installs a fault-injection plan: every subsequent `collect*` call
    /// corrupts its digitized traces per the plan's schedule, replayably
    /// (see [`FaultPlan`]). Faulted sets are wrapped with
    /// [`TraceSet::from_raw`] so deliberately corrupted samples reach
    /// the sanitizer instead of erroring out of collection.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs or removes the fault-injection plan in place.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// The installed fault-injection plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Collects `n_traces` single-encryption traces with a fixed random
    /// stimulus derived from `seed` (the detection-campaign default),
    /// Trojan `armed` (if any) triggered throughout.
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect(
        &self,
        key: [u8; 16],
        n_traces: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
    ) -> Result<TraceSet, TrustError> {
        let pt: [u8; 16] = StdRng::seed_from_u64(seed ^ 0x97).gen();
        self.collect_with(key, Stimulus::Fixed(pt), n_traces, armed, channel, seed)
    }

    /// Collects `n_traces` single-encryption traces under an explicit
    /// stimulus policy.
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect_with(
        &self,
        key: [u8; 16],
        stimulus: Stimulus,
        n_traces: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
    ) -> Result<TraceSet, TrustError> {
        self.collect_attempt(key, stimulus, n_traces, armed, channel, seed, 0)
    }

    /// One acquisition pass at re-acquisition ordinal `attempt`.
    ///
    /// Attempt 0 reproduces [`Self::collect_with`] exactly (the noise
    /// seed mix leaves the legacy seeds untouched); attempt `k > 0`
    /// draws fresh, still-deterministic measurement noise per trace, so
    /// a retry re-measures instead of replaying the same corruption.
    #[allow(clippy::too_many_arguments)]
    fn collect_attempt(
        &self,
        key: [u8; 16],
        stimulus: Stimulus,
        n_traces: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
        attempt: u32,
    ) -> Result<TraceSet, TrustError> {
        let _span = telemetry::span("collect");
        telemetry::counter("acquire.traces", n_traces as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let leak_sense = armed
            .and_then(|k| self.chip.trojan_ports(k))
            .and_then(|p| p.leak_sense);

        // Warm-up block (unrecorded): brings the registers to the steady
        // post-encryption state so every recorded trace starts alike. All
        // plaintexts are drawn up front, in trace order, so the stimulus
        // stream is independent of how the work is later chunked.
        let warmup: [u8; 16] = match stimulus {
            Stimulus::Fixed(block) => block,
            Stimulus::RandomPerTrace => rng.gen(),
        };
        let plaintexts: Vec<[u8; 16]> = (0..n_traces)
            .map(|_| match stimulus {
                Stimulus::Fixed(block) => block,
                Stimulus::RandomPerTrace => rng.gen(),
            })
            .collect();
        // Per-trace noise seed: campaign seed, trace index, and attempt
        // ordinal only — never worker identity — so parallel runs are
        // bit-identical to serial, and attempt 0 matches the legacy
        // (pre-retry) seeds exactly.
        let trace_seed = |i: usize| {
            seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407)
        };
        // The fault plan corrupts the digitized record in place, keyed on
        // (trace, attempt) so retries re-roll transient strikes.
        let corrupt = |i: usize, samples: &mut Vec<f64>| {
            if let Some(plan) = &self.faults {
                plan.apply(
                    i as u64,
                    attempt,
                    Some(channel),
                    samples,
                    self.clock.sample_rate_hz(),
                );
            }
        };

        // A Trojan-free netlist is replayable: its post-encryption register
        // state is a pure function of (key, previous plaintext), so a chunk
        // of the campaign can rebuild its simulator from scratch, warm up
        // with the chunk's predecessor plaintext, and reproduce the serial
        // event stream exactly. Trojan-carrying netlists are not replayable
        // (T1's counter free-runs even while dormant), so they simulate
        // serially and fan out only the measurement stage.
        let replayable = armed.is_none() && self.chip.trojan_kinds().next().is_none();
        let traces = if replayable {
            self.parallel
                .try_map_chunks(n_traces, |range| -> Result<_, TrustError> {
                    let mut sim = self.chip.simulator()?;
                    self.chip.disarm_all(&mut sim);
                    let prev = if range.start == 0 {
                        warmup
                    } else {
                        plaintexts[range.start - 1]
                    };
                    let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, prev, |_| {});
                    let mut out = Vec::with_capacity(range.len());
                    for i in range {
                        sim.start_recording();
                        let _ct = run_encryption_with(
                            &mut sim,
                            self.chip.aes_ports(),
                            key,
                            plaintexts[i],
                            |_| {},
                        );
                        let activity = sim.take_recording();
                        let trace =
                            self.measure_activity(&activity, None, channel, trace_seed(i), 1)?;
                        let mut samples = trace.into_samples();
                        corrupt(i, &mut samples);
                        out.push(samples);
                    }
                    Ok(out)
                })?
        } else {
            let _span = telemetry::span("simulate");
            let mut sim = self.chip.simulator()?;
            self.chip.disarm_all(&mut sim);
            if let Some(kind) = armed {
                self.chip.arm(&mut sim, kind, true);
            }
            let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, warmup, |_| {});
            let mut recorded = Vec::with_capacity(n_traces);
            for pt in &plaintexts {
                sim.start_recording();
                let mut leak_per_cycle = Vec::new();
                let _ct = run_encryption_with(&mut sim, self.chip.aes_ports(), key, *pt, |s| {
                    if let Some(net) = leak_sense {
                        // Leakage path opens while the sense bit is low.
                        leak_per_cycle.push(if s.value(net) { 0.0 } else { T2_LEAK_CURRENT_A });
                    }
                });
                let activity = sim.take_recording();
                recorded.push((activity, leak_sense.is_some().then_some(leak_per_cycle)));
            }
            drop(_span);
            self.parallel
                .try_map(n_traces, |i| -> Result<_, TrustError> {
                    let (activity, extra) = &recorded[i];
                    let trace = self.measure_activity(
                        activity,
                        extra.as_deref(),
                        channel,
                        trace_seed(i),
                        1,
                    )?;
                    let mut samples = trace.into_samples();
                    corrupt(i, &mut samples);
                    Ok(samples)
                })?
        };
        if self.faults.is_some() {
            // Injected faults may legitimately produce NaN/Inf samples;
            // the sanitizer downstream is the component that judges them.
            TraceSet::from_raw(traces, self.clock.sample_rate_hz())
        } else {
            TraceSet::new(traces, self.clock.sample_rate_hz())
        }
    }

    /// Collects one long continuous trace spanning `n_blocks` back-to-back
    /// encryptions — the runtime-monitoring format the spectral detector
    /// needs (frequency resolution `f_clk·samples_per_cycle / N`).
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect_continuous(
        &self,
        key: [u8; 16],
        n_blocks: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
    ) -> Result<VoltageTrace, TrustError> {
        let _span = telemetry::span("collect_continuous");
        telemetry::counter("acquire.blocks", n_blocks as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = self.chip.simulator()?;
        self.chip.disarm_all(&mut sim);
        if let Some(kind) = armed {
            self.chip.arm(&mut sim, kind, true);
        }
        let leak_sense = armed
            .and_then(|k| self.chip.trojan_ports(k))
            .and_then(|p| p.leak_sense);
        sim.start_recording();
        let mut leak_per_cycle = Vec::new();
        for _ in 0..n_blocks {
            let pt: [u8; 16] = rng.gen();
            let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, pt, |s| {
                if let Some(net) = leak_sense {
                    leak_per_cycle.push(if s.value(net) { 0.0 } else { T2_LEAK_CURRENT_A });
                }
            });
        }
        let activity = sim.take_recording();
        let extra = if leak_sense.is_some() {
            Some(leak_per_cycle)
        } else {
            None
        };
        // The long trace parallelizes inside the measurement: current
        // synthesis fans its cycle chunks across the pool.
        let mut trace = self.measure_activity(
            &activity,
            extra.as_deref(),
            channel,
            seed,
            self.parallel.workers,
        )?;
        if let Some(plan) = &self.faults {
            let fs = trace.sample_rate_hz();
            plan.apply(0, 0, Some(channel), trace.samples_mut(), fs);
        }
        Ok(trace)
    }

    /// The paper's noise-measurement step (§V-A step 1): the chip is
    /// powered but idle; the returned trace is pure measurement noise.
    pub fn collect_noise(&self, n_samples: usize, channel: Channel, seed: u64) -> VoltageTrace {
        match &self.backend {
            Backend::Simulation { onchip, external } => {
                let sensor = match channel {
                    Channel::OnChipSensor => onchip,
                    Channel::ExternalProbe => external,
                };
                sensor.measure_noise(n_samples, seed)
            }
            Backend::Silicon(fab) => fab.measure_noise(channel, n_samples, seed),
        }
    }

    /// Collects like [`Self::collect`], but screens every trace through
    /// `sanitizer` and degrades gracefully instead of handing corrupted
    /// data to the fingerprint:
    ///
    /// 1. **Retry with backoff** — rejected traces are re-acquired up to
    ///    `policy.max_attempts` times; each round re-measures with fresh
    ///    (still deterministic) noise and re-rolls transient fault
    ///    strikes, with exponential backoff recorded per round.
    /// 2. **Channel fallback** — traces still rejected are re-measured on
    ///    `policy.fallback`; between the two channels' verdicts the
    ///    better one wins, ties keeping the primary.
    /// 3. **Sensor-fault escalation** — if more than
    ///    `policy.max_reject_fraction` of the campaign is still rejected,
    ///    the collection fails with [`TrustError::SensorFault`].
    ///
    /// With no faults present this is bit-identical to [`Self::collect`]:
    /// every trace passes on attempt 0 with the legacy noise seeds.
    ///
    /// # Errors
    ///
    /// [`TrustError::SensorFault`] per rule 3, plus forwarded
    /// simulation/measurement errors.
    #[allow(clippy::too_many_arguments)]
    pub fn collect_robust(
        &self,
        key: [u8; 16],
        n_traces: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
        sanitizer: &TraceSanitizer,
        policy: RetryPolicy,
    ) -> Result<RobustCollection, TrustError> {
        let _span = telemetry::span("collect_robust");
        let pt: [u8; 16] = StdRng::seed_from_u64(seed ^ 0x97).gen();
        let stimulus = Stimulus::Fixed(pt);
        let first = self.collect_attempt(key, stimulus, n_traces, armed, channel, seed, 0)?;
        let rate = first.sample_rate_hz();
        let mut traces = first.traces().to_vec();
        let mut verdicts: Vec<TraceVerdict> = traces.iter().map(|t| sanitizer.inspect(t)).collect();
        let mut attempts = vec![1u32; n_traces];
        let mut channels = vec![channel; n_traces];
        let mut retries = 0u64;
        let mut fallbacks = 0u64;
        let mut backoff_total_us = 0u64;

        for attempt in 1..policy.max_attempts {
            let pending: Vec<usize> = (0..n_traces)
                .filter(|&i| verdicts[i].is_rejected())
                .collect();
            if pending.is_empty() {
                break;
            }
            let backoff = policy.backoff_us(attempt, seed);
            backoff_total_us = backoff_total_us.saturating_add(backoff);
            telemetry::counter("acquire.backoff_us", backoff);
            telemetry::counter("acquire.retries", pending.len() as u64);
            retries += pending.len() as u64;
            let again =
                self.collect_attempt(key, stimulus, n_traces, armed, channel, seed, attempt)?;
            for &i in &pending {
                traces[i] = again.traces()[i].clone();
                verdicts[i] = sanitizer.inspect(&traces[i]);
                attempts[i] += 1;
            }
        }

        if let Some(fb) = policy.fallback {
            let pending: Vec<usize> = (0..n_traces)
                .filter(|&i| verdicts[i].is_rejected())
                .collect();
            if !pending.is_empty() && fb != channel {
                let alt = self.collect_attempt(key, stimulus, n_traces, armed, fb, seed, 0)?;
                let rank = |v: &TraceVerdict| match v {
                    TraceVerdict::Clean => 0,
                    TraceVerdict::Degraded { .. } => 1,
                    TraceVerdict::Rejected { .. } => 2,
                };
                for &i in &pending {
                    let fresh = &alt.traces()[i];
                    let v = sanitizer.inspect(fresh);
                    attempts[i] += 1;
                    if rank(&v) < rank(&verdicts[i]) {
                        traces[i] = fresh.clone();
                        verdicts[i] = v;
                        channels[i] = fb;
                        fallbacks += 1;
                        telemetry::counter("acquire.fallbacks", 1);
                    }
                }
            }
        }

        let rejected = verdicts.iter().filter(|v| v.is_rejected()).count();
        if rejected as f64 > policy.max_reject_fraction * n_traces as f64 {
            return Err(TrustError::SensorFault {
                rejected,
                total: n_traces,
            });
        }
        let reports: Vec<TraceReport> = verdicts
            .into_iter()
            .enumerate()
            .map(|(i, verdict)| TraceReport {
                index: i,
                verdict,
                attempts: attempts[i],
                channel: channels[i],
            })
            .collect();
        let set = TraceSet::from_raw(traces, rate)?;
        Ok(RobustCollection {
            set,
            reports,
            retries,
            fallbacks,
            backoff_total_us,
        })
    }

    fn measure_activity(
        &self,
        activity: &emtrust_sim::ActivityTrace,
        extra_leakage: Option<&[f64]>,
        channel: Channel,
        seed: u64,
        workers: usize,
    ) -> Result<VoltageTrace, TrustError> {
        let injections = self.a2_injections(activity.cycle_count());
        match &self.backend {
            Backend::Simulation { onchip, external } => {
                let sensor = match channel {
                    Channel::OnChipSensor => onchip,
                    Channel::ExternalProbe => external,
                };
                Ok(sensor.measure_with(
                    self.chip.netlist(),
                    activity,
                    extra_leakage,
                    &injections,
                    seed,
                    workers,
                )?)
            }
            Backend::Silicon(fab) => Ok(fab.measure_with(
                self.chip.netlist(),
                activity,
                channel,
                extra_leakage,
                &injections,
                seed,
                workers,
            )?),
        }
    }

    fn a2_injections(&self, cycles: usize) -> Vec<PointCurrentSource> {
        match &self.a2 {
            Some(a2) if a2.is_triggering() => {
                let n = cycles * self.clock.samples_per_cycle();
                vec![PointCurrentSource {
                    location_um: a2.location_um(),
                    samples: a2.current_samples(n, self.clock.sample_rate_hz()),
                }]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
#[deny(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = *b"sixteen byte key";

    #[test]
    fn trace_set_validation() -> Result<(), TrustError> {
        assert!(TraceSet::new(vec![vec![1.0], vec![1.0, 2.0]], 1.0).is_err());
        assert!(TraceSet::new(vec![vec![1.0]], 0.0).is_err());
        let s = TraceSet::new(vec![vec![1.0, 2.0]; 3], 10.0)?;
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.sample_rate_hz(), 10.0);
        Ok(())
    }

    #[test]
    fn trace_set_distinguishes_shape_and_value_defects() {
        assert!(matches!(
            TraceSet::new(vec![vec![1.0], vec![1.0, 2.0]], 1.0),
            Err(TrustError::TraceLengthMismatch {
                trace: 1,
                expected: 1,
                actual: 2
            })
        ));
        assert!(matches!(
            TraceSet::new(vec![vec![1.0, f64::NAN]], 1.0),
            Err(TrustError::NonFiniteSample {
                trace: 0,
                sample: 1
            })
        ));
        // The raw constructor admits corrupted values but not bad shapes.
        assert!(TraceSet::from_raw(vec![vec![1.0, f64::NAN]], 1.0).is_ok());
        assert!(TraceSet::from_raw(vec![vec![1.0], vec![1.0, 2.0]], 1.0).is_err());
        assert!(TraceSet::from_raw(vec![vec![1.0]], 0.0).is_err());
    }

    #[test]
    fn backoff_schedule_is_jittered_capped_and_deterministic() {
        // Pin the exact schedule for one seed: full-jitter exponential
        // doubling from 100 µs, capped at 350 µs. The values are a
        // regression anchor for the seeded-RNG derivation — any change
        // to the keying or the draw breaks replayability of recorded
        // campaigns.
        let policy = RetryPolicy {
            backoff_base_us: 100,
            backoff_cap_us: 350,
            backoff_jitter: 0.5,
            ..RetryPolicy::default()
        };
        let schedule: Vec<u64> = (1..=6).map(|a| policy.backoff_us(a, 0xBACC)).collect();
        assert_eq!(schedule, vec![149, 289, 350, 350, 350, 350]);
        // Deterministic: the same (policy, attempt, seed) replays.
        let replay: Vec<u64> = (1..=6).map(|a| policy.backoff_us(a, 0xBACC)).collect();
        assert_eq!(schedule, replay);
        // A different campaign seed draws a different (still capped)
        // schedule.
        let other: Vec<u64> = (1..=6).map(|a| policy.backoff_us(a, 0xBACD)).collect();
        assert_ne!(schedule, other);
        assert!(other.iter().all(|&b| b <= 350));
        // Zero jitter restores the fixed doubling schedule.
        let fixed = RetryPolicy {
            backoff_jitter: 0.0,
            ..policy
        };
        let plain: Vec<u64> = (1..=4).map(|a| fixed.backoff_us(a, 0xBACC)).collect();
        assert_eq!(plain, vec![100, 200, 350, 350]);
    }

    #[test]
    fn backoff_jitter_stays_within_the_advertised_band() {
        let policy = RetryPolicy::default();
        for seed in 0..200u64 {
            let b = policy.backoff_us(1, seed);
            // nominal 100 µs, jitter 0.5 → [50, 150).
            assert!((50..150).contains(&b), "attempt 1 backoff {b}");
        }
        // The overflow guard still applies under the cap.
        let b = policy.backoff_us(64, 7);
        assert!(b <= policy.backoff_cap_us);
    }

    #[test]
    fn faulted_collection_replays_and_keeps_untouched_samples_identical() -> Result<(), TrustError>
    {
        use emtrust_faults::FaultKind;
        let chip = ProtectedChip::golden();
        let clean_bench = TestBench::simulation(&chip)?;
        let clean = clean_bench.collect(KEY, 2, None, Channel::OnChipSensor, 7)?;
        let plan = FaultPlan::single(5, FaultKind::NanCorruption, 0.5);
        let bench = TestBench::simulation(&chip)?.with_faults(plan);
        let a = bench.collect(KEY, 2, None, Channel::OnChipSensor, 7)?;
        let b = bench.collect(KEY, 2, None, Channel::OnChipSensor, 7)?;
        let flat = |s: &TraceSet| -> Vec<u64> {
            s.traces().iter().flatten().map(|x| x.to_bits()).collect()
        };
        assert_eq!(flat(&a), flat(&b), "faulted collection must replay");
        assert!(a.traces().iter().flatten().any(|x| !x.is_finite()));
        // The fault corrupts a handful of samples; every other sample is
        // bit-identical to the legacy (attempt 0) collection.
        let differing = flat(&clean)
            .iter()
            .zip(flat(&a).iter())
            .filter(|(c, f)| c != f)
            .count();
        assert!(
            (1..20).contains(&differing),
            "differing samples {differing}"
        );
        Ok(())
    }

    #[test]
    fn robust_collection_without_faults_matches_collect_exactly() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip)?;
        let plain = bench.collect(KEY, 3, None, Channel::OnChipSensor, 9)?;
        let robust = bench.collect_robust(
            KEY,
            3,
            None,
            Channel::OnChipSensor,
            9,
            &TraceSanitizer::default(),
            RetryPolicy::default(),
        )?;
        assert_eq!(robust.set, plain);
        assert_eq!(robust.retries, 0);
        assert_eq!(robust.fallbacks, 0);
        assert_eq!(robust.backoff_total_us, 0);
        assert!(robust
            .reports
            .iter()
            .all(|r| r.attempts == 1 && r.verdict.is_clean()));
        Ok(())
    }

    #[test]
    fn robust_collection_falls_back_to_the_external_probe() -> Result<(), TrustError> {
        use emtrust_faults::{FaultKind, FaultSpec};
        let chip = ProtectedChip::golden();
        // Persistent flatline on the on-chip channel only: retries cannot
        // clear it, the external-probe fallback can.
        let plan = FaultPlan::new(3)
            .with(FaultSpec::new(FaultKind::Flatline, 1.0).on_channel(Channel::OnChipSensor));
        let bench = TestBench::simulation(&chip)?.with_faults(plan);
        let policy = RetryPolicy {
            max_attempts: 2,
            fallback: Some(Channel::ExternalProbe),
            ..Default::default()
        };
        let robust = bench.collect_robust(
            KEY,
            2,
            None,
            Channel::OnChipSensor,
            4,
            &TraceSanitizer::default(),
            policy,
        )?;
        assert_eq!(robust.rejected(), 0);
        assert_eq!(robust.fallbacks, 2);
        assert_eq!(robust.retries, 2);
        assert!(robust.backoff_total_us > 0);
        assert!(robust
            .reports
            .iter()
            .all(|r| r.channel == Channel::ExternalProbe && r.attempts == 3));
        Ok(())
    }

    #[test]
    fn robust_collection_escalates_to_sensor_fault() -> Result<(), TrustError> {
        use emtrust_faults::FaultKind;
        let chip = ProtectedChip::golden();
        let plan = FaultPlan::single(3, FaultKind::Flatline, 1.0);
        let bench = TestBench::simulation(&chip)?.with_faults(plan);
        let policy = RetryPolicy {
            max_attempts: 2,
            max_reject_fraction: 0.25,
            ..Default::default()
        };
        let outcome = bench.collect_robust(
            KEY,
            2,
            None,
            Channel::OnChipSensor,
            4,
            &TraceSanitizer::default(),
            policy,
        );
        assert!(matches!(
            outcome,
            Err(TrustError::SensorFault {
                rejected: 2,
                total: 2
            })
        ));
        Ok(())
    }

    #[test]
    fn simulation_bench_collects_consistent_traces() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip)?;
        let set = bench.collect(KEY, 3, None, Channel::OnChipSensor, 1)?;
        assert_eq!(set.len(), 3);
        // 12 cycles × 64 samples per encryption.
        assert_eq!(set.traces()[0].len(), 12 * 64);
        // Traces carry signal.
        assert!(emtrust_dsp::stats::rms(&set.traces()[0]) > 1e-8);
        Ok(())
    }

    #[test]
    fn onchip_channel_outweighs_external() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip)?;
        let on = bench.collect(KEY, 2, None, Channel::OnChipSensor, 1)?;
        let ext = bench.collect(KEY, 2, None, Channel::ExternalProbe, 1)?;
        let rms = |s: &TraceSet| emtrust_dsp::stats::rms(&s.traces()[0]);
        assert!(rms(&on) > 3.0 * rms(&ext));
        Ok(())
    }

    #[test]
    fn armed_t4_changes_the_measurement() -> Result<(), TrustError> {
        let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
        let bench = TestBench::simulation(&chip)?;
        let golden = bench.collect(KEY, 2, None, Channel::OnChipSensor, 1)?;
        let armed = bench.collect(
            KEY,
            2,
            Some(TrojanKind::T4PowerDegrader),
            Channel::OnChipSensor,
            1,
        )?;
        let rms = |s: &TraceSet| emtrust_dsp::stats::rms(&s.traces()[0]);
        assert!(rms(&armed) > 1.02 * rms(&golden));
        Ok(())
    }

    #[test]
    fn continuous_collection_spans_blocks() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip)?;
        let trace = bench.collect_continuous(KEY, 4, None, Channel::OnChipSensor, 2)?;
        assert_eq!(trace.len(), 4 * 12 * 64);
        Ok(())
    }

    #[test]
    fn noise_collection_is_pure_noise() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip)?;
        let noise = bench.collect_noise(4096, Channel::OnChipSensor, 3);
        let rms = noise.rms_v();
        let expect = emtrust_em::noise::ONCHIP_ENV_NOISE_RMS_V;
        assert!((rms - expect).abs() < 0.2 * expect, "noise rms {rms}");
        Ok(())
    }

    #[test]
    fn a2_installation_places_and_arms() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let mut bench = TestBench::simulation(&chip)?.with_a2(A2Trojan::new(10e6));
        match bench.a2() {
            Some(a2) => assert_ne!(a2.location_um(), (0.0, 0.0)),
            None => unreachable!("with_a2 must install the Trojan"),
        }
        bench.arm_a2(true)?;
        assert!(bench.a2().is_some_and(|a2| a2.is_triggering()));
        let armed = bench.collect_continuous(KEY, 2, None, Channel::OnChipSensor, 4)?;
        bench.arm_a2(false)?;
        let dormant = bench.collect_continuous(KEY, 2, None, Channel::OnChipSensor, 4)?;
        // Same seed, so noise cancels sample-wise: the armed-minus-dormant
        // residual is exactly the A2 injection's EM contribution. Total RMS
        // is not a sound discriminator here — the 5 MHz trigger is
        // phase-locked to the clock, so its cross-term with the AES signal
        // can carry either sign.
        let injected: Vec<f64> = armed
            .samples()
            .iter()
            .zip(dormant.samples())
            .map(|(a, d)| a - d)
            .collect();
        let injected_rms = emtrust_dsp::stats::rms(&injected);
        assert!(
            injected_rms > 0.02 * dormant.rms_v(),
            "armed A2 must inject measurable energy: {injected_rms:.3e} vs floor {:.3e}",
            0.02 * dormant.rms_v()
        );
        Ok(())
    }

    #[test]
    fn silicon_bench_measures_through_the_scope() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let bench = TestBench::silicon(&chip, 1)?;
        let set = bench.collect(KEY, 2, None, Channel::OnChipSensor, 5)?;
        assert_eq!(set.len(), 2);
        assert!(emtrust_dsp::stats::rms(&set.traces()[0]) > 1e-8);
        Ok(())
    }
}
