//! Trace acquisition: driving the Trojan-carrying AES chip and measuring
//! it through either the simulation pipeline (paper §IV) or the
//! fabricated-chip pipeline (paper §V).

use crate::parallel::ParallelConfig;
use crate::TrustError;
use emtrust_aes::netlist::run_encryption_with;
use emtrust_em::coil::Coil;
use emtrust_em::emf::VoltageTrace;
use emtrust_em::pipeline::{EmSensor, PointCurrentSource};
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_silicon::{Channel, FabricatedChip, ProcessVariation};
use emtrust_telemetry as telemetry;
use emtrust_trojan::{A2Trojan, ProtectedChip, TrojanKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extra leakage current drawn while Trojan T2's sense bit is low and its
/// trigger is high, in amperes (the PMOS–NMOS leakage path of §IV-A).
pub const T2_LEAK_CURRENT_A: f64 = 2.0e-5;

/// The plaintext stimulus policy during collection.
///
/// The paper's fingerprinting assumes "the users know how the circuit
/// will operate": detection campaigns replay a fixed stimulus so the
/// golden spread reflects only noise, while characterization sweeps may
/// randomize per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// Replay one fixed plaintext block for every trace.
    Fixed([u8; 16]),
    /// Draw a fresh random plaintext per trace (seeded).
    RandomPerTrace,
}

/// A set of equal-length measured traces (volts).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    traces: Vec<Vec<f64>>,
    sample_rate_hz: f64,
}

impl TraceSet {
    /// Wraps raw traces.
    ///
    /// # Errors
    ///
    /// Returns [`TrustError::InvalidParameter`] if the traces are ragged
    /// or the sample rate is not positive.
    pub fn new(traces: Vec<Vec<f64>>, sample_rate_hz: f64) -> Result<Self, TrustError> {
        if sample_rate_hz <= 0.0 {
            return Err(TrustError::InvalidParameter {
                what: "sample rate must be positive",
            });
        }
        if let Some(first) = traces.first() {
            if traces.iter().any(|t| t.len() != first.len()) {
                return Err(TrustError::InvalidParameter {
                    what: "traces must share one length",
                });
            }
        }
        Ok(Self {
            traces,
            sample_rate_hz,
        })
    }

    /// The traces.
    pub fn traces(&self) -> &[Vec<f64>] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The acquisition sample rate.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

/// Which measurement backend the bench uses.
#[derive(Debug)]
enum Backend {
    /// Paper §IV: EM pipeline plus environment noise only.
    Simulation {
        onchip: EmSensor,
        external: EmSensor,
    },
    /// Paper §V: process variation, package and oscilloscope included.
    Silicon(FabricatedChip),
}

/// The assembled experiment: a Trojan-carrying chip, its floorplan, both
/// measurement channels, and (optionally) an A2 analog Trojan.
#[derive(Debug)]
pub struct TestBench<'c> {
    chip: &'c ProtectedChip,
    floorplan: Floorplan,
    backend: Backend,
    clock: ClockConfig,
    a2: Option<A2Trojan>,
    parallel: ParallelConfig,
}

impl<'c> TestBench<'c> {
    /// Builds the simulation bench (paper §IV): default die, spiral
    /// sensor, external probe, reference clock.
    ///
    /// # Errors
    ///
    /// Propagates layout and EM-pipeline construction errors.
    pub fn simulation(chip: &'c ProtectedChip) -> Result<Self, TrustError> {
        let library = Library::generic_180nm();
        let die = Die::for_netlist(chip.netlist(), &library, 0.7)?;
        let floorplan = Floorplan::place(chip.netlist(), &library, die)?;
        let clock = ClockConfig::reference();
        let model = CurrentModel::new(library, clock);
        let onchip = EmSensor::new(
            Coil::OnChip(SpiralSensor::for_die(die).map_err(TrustError::Layout)?),
            chip.netlist(),
            &floorplan,
            model.clone(),
        )?;
        let external = EmSensor::new(
            Coil::External(ExternalProbe::over_die(die)),
            chip.netlist(),
            &floorplan,
            model,
        )?;
        Ok(Self {
            chip,
            floorplan,
            backend: Backend::Simulation { onchip, external },
            clock,
            a2: None,
            parallel: ParallelConfig::default(),
        })
    }

    /// Builds the fabricated-chip bench (paper §V) for die number
    /// `chip_id` with nominal process variation.
    ///
    /// # Errors
    ///
    /// Propagates silicon-model construction errors.
    pub fn silicon(chip: &'c ProtectedChip, chip_id: u64) -> Result<Self, TrustError> {
        let fab = FabricatedChip::fabricate(chip.netlist(), chip_id, ProcessVariation::nominal())?;
        let floorplan = fab.floorplan().clone();
        Ok(Self {
            chip,
            floorplan,
            backend: Backend::Silicon(fab),
            clock: ClockConfig::reference(),
            a2: None,
            parallel: ParallelConfig::default(),
        })
    }

    /// Installs an A2-style analog Trojan. If the Trojan is at the
    /// default origin it is placed near the middle of the core area.
    pub fn with_a2(mut self, a2: A2Trojan) -> Self {
        let placed = if a2.location_um() == (0.0, 0.0) {
            let c = self.floorplan.die().center();
            a2.with_location(c.x * 0.8, c.y * 1.1)
        } else {
            a2
        };
        self.a2 = Some(placed);
        self
    }

    /// Arms or disarms the installed A2 Trojan's fast-flipping trigger.
    ///
    /// # Panics
    ///
    /// Panics if no A2 Trojan is installed.
    pub fn arm_a2(&mut self, on: bool) {
        self.a2
            .as_mut()
            .expect("no A2 trojan installed")
            .set_triggering(on);
    }

    /// The chip under test.
    pub fn chip(&self) -> &ProtectedChip {
        self.chip
    }

    /// The floorplan in use.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// The installed A2 Trojan, if any.
    pub fn a2(&self) -> Option<&A2Trojan> {
        self.a2.as_ref()
    }

    /// Sets the parallel execution policy used by the `collect*` methods.
    ///
    /// The policy only affects wall-clock time: every collection result is
    /// bit-identical for every worker count (noise seeds derive from the
    /// campaign seed and the trace index, never from worker identity).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The parallel execution policy.
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// Collects `n_traces` single-encryption traces with a fixed random
    /// stimulus derived from `seed` (the detection-campaign default),
    /// Trojan `armed` (if any) triggered throughout.
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect(
        &self,
        key: [u8; 16],
        n_traces: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
    ) -> Result<TraceSet, TrustError> {
        let pt: [u8; 16] = StdRng::seed_from_u64(seed ^ 0x97).gen();
        self.collect_with(key, Stimulus::Fixed(pt), n_traces, armed, channel, seed)
    }

    /// Collects `n_traces` single-encryption traces under an explicit
    /// stimulus policy.
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect_with(
        &self,
        key: [u8; 16],
        stimulus: Stimulus,
        n_traces: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
    ) -> Result<TraceSet, TrustError> {
        let _span = telemetry::span("collect");
        telemetry::counter("acquire.traces", n_traces as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let leak_sense = armed
            .and_then(|k| self.chip.trojan_ports(k))
            .and_then(|p| p.leak_sense);

        // Warm-up block (unrecorded): brings the registers to the steady
        // post-encryption state so every recorded trace starts alike. All
        // plaintexts are drawn up front, in trace order, so the stimulus
        // stream is independent of how the work is later chunked.
        let warmup: [u8; 16] = match stimulus {
            Stimulus::Fixed(block) => block,
            Stimulus::RandomPerTrace => rng.gen(),
        };
        let plaintexts: Vec<[u8; 16]> = (0..n_traces)
            .map(|_| match stimulus {
                Stimulus::Fixed(block) => block,
                Stimulus::RandomPerTrace => rng.gen(),
            })
            .collect();
        // Per-trace noise seed: campaign seed and trace index only — never
        // worker identity — so parallel runs are bit-identical to serial.
        let trace_seed = |i: usize| seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);

        // A Trojan-free netlist is replayable: its post-encryption register
        // state is a pure function of (key, previous plaintext), so a chunk
        // of the campaign can rebuild its simulator from scratch, warm up
        // with the chunk's predecessor plaintext, and reproduce the serial
        // event stream exactly. Trojan-carrying netlists are not replayable
        // (T1's counter free-runs even while dormant), so they simulate
        // serially and fan out only the measurement stage.
        let replayable = armed.is_none() && self.chip.trojan_kinds().next().is_none();
        let traces = if replayable {
            self.parallel
                .try_map_chunks(n_traces, |range| -> Result<_, TrustError> {
                    let mut sim = self.chip.simulator()?;
                    self.chip.disarm_all(&mut sim);
                    let prev = if range.start == 0 {
                        warmup
                    } else {
                        plaintexts[range.start - 1]
                    };
                    let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, prev, |_| {});
                    let mut out = Vec::with_capacity(range.len());
                    for i in range {
                        sim.start_recording();
                        let _ct = run_encryption_with(
                            &mut sim,
                            self.chip.aes_ports(),
                            key,
                            plaintexts[i],
                            |_| {},
                        );
                        let activity = sim.take_recording();
                        let trace =
                            self.measure_activity(&activity, None, channel, trace_seed(i), 1)?;
                        out.push(trace.into_samples());
                    }
                    Ok(out)
                })?
        } else {
            let _span = telemetry::span("simulate");
            let mut sim = self.chip.simulator()?;
            self.chip.disarm_all(&mut sim);
            if let Some(kind) = armed {
                self.chip.arm(&mut sim, kind, true);
            }
            let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, warmup, |_| {});
            let mut recorded = Vec::with_capacity(n_traces);
            for pt in &plaintexts {
                sim.start_recording();
                let mut leak_per_cycle = Vec::new();
                let _ct = run_encryption_with(&mut sim, self.chip.aes_ports(), key, *pt, |s| {
                    if let Some(net) = leak_sense {
                        // Leakage path opens while the sense bit is low.
                        leak_per_cycle.push(if s.value(net) { 0.0 } else { T2_LEAK_CURRENT_A });
                    }
                });
                let activity = sim.take_recording();
                recorded.push((activity, leak_sense.is_some().then_some(leak_per_cycle)));
            }
            drop(_span);
            self.parallel
                .try_map(n_traces, |i| -> Result<_, TrustError> {
                    let (activity, extra) = &recorded[i];
                    let trace = self.measure_activity(
                        activity,
                        extra.as_deref(),
                        channel,
                        trace_seed(i),
                        1,
                    )?;
                    Ok(trace.into_samples())
                })?
        };
        TraceSet::new(traces, self.clock.sample_rate_hz())
    }

    /// Collects one long continuous trace spanning `n_blocks` back-to-back
    /// encryptions — the runtime-monitoring format the spectral detector
    /// needs (frequency resolution `f_clk·samples_per_cycle / N`).
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect_continuous(
        &self,
        key: [u8; 16],
        n_blocks: usize,
        armed: Option<TrojanKind>,
        channel: Channel,
        seed: u64,
    ) -> Result<VoltageTrace, TrustError> {
        let _span = telemetry::span("collect_continuous");
        telemetry::counter("acquire.blocks", n_blocks as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = self.chip.simulator()?;
        self.chip.disarm_all(&mut sim);
        if let Some(kind) = armed {
            self.chip.arm(&mut sim, kind, true);
        }
        let leak_sense = armed
            .and_then(|k| self.chip.trojan_ports(k))
            .and_then(|p| p.leak_sense);
        sim.start_recording();
        let mut leak_per_cycle = Vec::new();
        for _ in 0..n_blocks {
            let pt: [u8; 16] = rng.gen();
            let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, pt, |s| {
                if let Some(net) = leak_sense {
                    leak_per_cycle.push(if s.value(net) { 0.0 } else { T2_LEAK_CURRENT_A });
                }
            });
        }
        let activity = sim.take_recording();
        let extra = if leak_sense.is_some() {
            Some(leak_per_cycle)
        } else {
            None
        };
        // The long trace parallelizes inside the measurement: current
        // synthesis fans its cycle chunks across the pool.
        self.measure_activity(
            &activity,
            extra.as_deref(),
            channel,
            seed,
            self.parallel.workers,
        )
    }

    /// The paper's noise-measurement step (§V-A step 1): the chip is
    /// powered but idle; the returned trace is pure measurement noise.
    pub fn collect_noise(&self, n_samples: usize, channel: Channel, seed: u64) -> VoltageTrace {
        match &self.backend {
            Backend::Simulation { onchip, external } => {
                let sensor = match channel {
                    Channel::OnChipSensor => onchip,
                    Channel::ExternalProbe => external,
                };
                sensor.measure_noise(n_samples, seed)
            }
            Backend::Silicon(fab) => fab.measure_noise(channel, n_samples, seed),
        }
    }

    fn measure_activity(
        &self,
        activity: &emtrust_sim::ActivityTrace,
        extra_leakage: Option<&[f64]>,
        channel: Channel,
        seed: u64,
        workers: usize,
    ) -> Result<VoltageTrace, TrustError> {
        let injections = self.a2_injections(activity.cycle_count());
        match &self.backend {
            Backend::Simulation { onchip, external } => {
                let sensor = match channel {
                    Channel::OnChipSensor => onchip,
                    Channel::ExternalProbe => external,
                };
                Ok(sensor.measure_with(
                    self.chip.netlist(),
                    activity,
                    extra_leakage,
                    &injections,
                    seed,
                    workers,
                )?)
            }
            Backend::Silicon(fab) => Ok(fab.measure_with(
                self.chip.netlist(),
                activity,
                channel,
                extra_leakage,
                &injections,
                seed,
                workers,
            )?),
        }
    }

    fn a2_injections(&self, cycles: usize) -> Vec<PointCurrentSource> {
        match &self.a2 {
            Some(a2) if a2.is_triggering() => {
                let n = cycles * self.clock.samples_per_cycle();
                vec![PointCurrentSource {
                    location_um: a2.location_um(),
                    samples: a2.current_samples(n, self.clock.sample_rate_hz()),
                }]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = *b"sixteen byte key";

    #[test]
    fn trace_set_validation() {
        assert!(TraceSet::new(vec![vec![1.0], vec![1.0, 2.0]], 1.0).is_err());
        assert!(TraceSet::new(vec![vec![1.0]], 0.0).is_err());
        let s = TraceSet::new(vec![vec![1.0, 2.0]; 3], 10.0).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.sample_rate_hz(), 10.0);
    }

    #[test]
    fn simulation_bench_collects_consistent_traces() {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip).unwrap();
        let set = bench
            .collect(KEY, 3, None, Channel::OnChipSensor, 1)
            .unwrap();
        assert_eq!(set.len(), 3);
        // 12 cycles × 64 samples per encryption.
        assert_eq!(set.traces()[0].len(), 12 * 64);
        // Traces carry signal.
        assert!(emtrust_dsp::stats::rms(&set.traces()[0]) > 1e-8);
    }

    #[test]
    fn onchip_channel_outweighs_external() {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip).unwrap();
        let on = bench
            .collect(KEY, 2, None, Channel::OnChipSensor, 1)
            .unwrap();
        let ext = bench
            .collect(KEY, 2, None, Channel::ExternalProbe, 1)
            .unwrap();
        let rms = |s: &TraceSet| emtrust_dsp::stats::rms(&s.traces()[0]);
        assert!(rms(&on) > 3.0 * rms(&ext));
    }

    #[test]
    fn armed_t4_changes_the_measurement() {
        let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
        let bench = TestBench::simulation(&chip).unwrap();
        let golden = bench
            .collect(KEY, 2, None, Channel::OnChipSensor, 1)
            .unwrap();
        let armed = bench
            .collect(
                KEY,
                2,
                Some(TrojanKind::T4PowerDegrader),
                Channel::OnChipSensor,
                1,
            )
            .unwrap();
        let rms = |s: &TraceSet| emtrust_dsp::stats::rms(&s.traces()[0]);
        assert!(rms(&armed) > 1.02 * rms(&golden));
    }

    #[test]
    fn continuous_collection_spans_blocks() {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip).unwrap();
        let trace = bench
            .collect_continuous(KEY, 4, None, Channel::OnChipSensor, 2)
            .unwrap();
        assert_eq!(trace.len(), 4 * 12 * 64);
    }

    #[test]
    fn noise_collection_is_pure_noise() {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip).unwrap();
        let noise = bench.collect_noise(4096, Channel::OnChipSensor, 3);
        let rms = noise.rms_v();
        let expect = emtrust_em::noise::ONCHIP_ENV_NOISE_RMS_V;
        assert!((rms - expect).abs() < 0.2 * expect, "noise rms {rms}");
    }

    #[test]
    fn a2_installation_places_and_arms() {
        let chip = ProtectedChip::golden();
        let mut bench = TestBench::simulation(&chip)
            .unwrap()
            .with_a2(A2Trojan::new(10e6));
        assert!(bench.a2().is_some());
        assert_ne!(bench.a2().unwrap().location_um(), (0.0, 0.0));
        bench.arm_a2(true);
        assert!(bench.a2().unwrap().is_triggering());
        let armed = bench
            .collect_continuous(KEY, 2, None, Channel::OnChipSensor, 4)
            .unwrap();
        bench.arm_a2(false);
        let dormant = bench
            .collect_continuous(KEY, 2, None, Channel::OnChipSensor, 4)
            .unwrap();
        // Same seed, so noise cancels sample-wise: the armed-minus-dormant
        // residual is exactly the A2 injection's EM contribution. Total RMS
        // is not a sound discriminator here — the 5 MHz trigger is
        // phase-locked to the clock, so its cross-term with the AES signal
        // can carry either sign.
        let injected: Vec<f64> = armed
            .samples()
            .iter()
            .zip(dormant.samples())
            .map(|(a, d)| a - d)
            .collect();
        let injected_rms = emtrust_dsp::stats::rms(&injected);
        assert!(
            injected_rms > 0.02 * dormant.rms_v(),
            "armed A2 must inject measurable energy: {injected_rms:.3e} vs floor {:.3e}",
            0.02 * dormant.rms_v()
        );
    }

    #[test]
    fn silicon_bench_measures_through_the_scope() {
        let chip = ProtectedChip::golden();
        let bench = TestBench::silicon(&chip, 1).unwrap();
        let set = bench
            .collect(KEY, 2, None, Channel::OnChipSensor, 5)
            .unwrap();
        assert_eq!(set.len(), 2);
        assert!(emtrust_dsp::stats::rms(&set.traces()[0]) > 1e-8);
    }
}
