//! The pluggable [`Detector`] trait and the built-in implementations.
//!
//! The paper's trusted data-analysis module runs two fixed detectors;
//! this module turns the detector set into an open axis. A detector is
//! anything that can
//!
//! 1. [`fit`](Detector::fit) itself on golden material (or nothing at
//!    all — see [`crate::persistence`] for a reference-free detector),
//! 2. [`score`](Detector::score) a shared [`FeatureFrame`] into a
//!    scalar test statistic plus a threshold, and
//! 3. turn that score into a boolean [`verdict`](Detector::verdict).
//!
//! The [`DetectionPipeline`](crate::pipeline::DetectionPipeline)
//! computes each trace's features once, fans `score` across its worker
//! pool (scores are pure), applies the per-detector verdicts, and fuses
//! them with a [`FusionPolicy`](crate::fusion::FusionPolicy). Stateful
//! detectors update themselves serially afterwards through
//! [`absorb`](Detector::absorb), so parallel batch runs stay
//! bit-identical to serial ones.

use crate::acquisition::TraceSet;
use crate::baseline::{BaselineSource, DetectorReadiness, RollingBaseline};
use crate::features::{bin_rms, FeatureFrame};
use crate::fingerprint::{FingerprintConfig, GoldenFingerprint};
use crate::health::SensorHealth;
use crate::spectral::{SpectralAnomaly, SpectralConfig, SpectralDetector};
use crate::TrustError;
use emtrust_dsp::stats::median;
use emtrust_dsp::window::Window;
use emtrust_em::emf::VoltageTrace;
use emtrust_telemetry as telemetry;
use std::fmt;

/// The kind of observation a detector consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorDomain {
    /// One fixed-length trace per encryption (the paper's time-domain
    /// Eq. 1 path).
    PerEncryption,
    /// A continuous monitoring window with a sample rate (the paper's
    /// frequency-domain A2 path).
    ContinuousWindow,
}

impl DetectorDomain {
    /// Stable label for telemetry and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorDomain::PerEncryption => "per_encryption",
            DetectorDomain::ContinuousWindow => "continuous_window",
        }
    }
}

/// The feature slots a detector reads from the shared [`FeatureFrame`].
/// The pipeline's featurizer fills the union of the registered
/// detectors' plans, exactly once per observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeaturePlan {
    /// Needs the detection-space projection (RMS features → scale →
    /// optional PCA), supplied by a [`Detector::projector`].
    pub needs_projection: bool,
    /// Needs the Welch spectrum, estimated per the first registered
    /// [`Detector::welch_spec`].
    pub needs_spectrum: bool,
}

/// Welch-estimation settings a spectral detector contributes to the
/// shared featurizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchSpec {
    /// Analysis window.
    pub window: Window,
    /// Number of Welch segments.
    pub segments: usize,
    /// Required window sample rate (`None` = any). Set by
    /// reference-based detectors whose golden spectrum pins the rate.
    pub expected_rate_hz: Option<f64>,
}

/// Golden material offered to [`Detector::fit`]. Each detector takes
/// what it needs and errors if a required slot is absent; a
/// reference-free detector ignores the context entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldenContext<'a> {
    /// Golden per-encryption traces (time-domain fitting).
    pub traces: Option<&'a TraceSet>,
    /// A golden continuous window (spectral fitting).
    pub window: Option<&'a VoltageTrace>,
}

impl<'a> GoldenContext<'a> {
    /// An empty context (only reference-free detectors can fit on it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds golden per-encryption traces.
    pub fn with_traces(mut self, traces: &'a TraceSet) -> Self {
        self.traces = Some(traces);
        self
    }

    /// Adds a golden continuous window.
    pub fn with_window(mut self, window: &'a VoltageTrace) -> Self {
        self.window = Some(window);
        self
    }
}

/// Detector-specific evidence attached to a [`Score`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScoreDetail {
    /// No structured evidence beyond the statistic itself.
    None,
    /// The spectral detector's anomalous spots, strongest first.
    Spectral {
        /// Every anomalous spot found in the window.
        anomalies: Vec<SpectralAnomaly>,
    },
    /// The spectral-persistence detector's run bookkeeping.
    Persistence {
        /// Hot bins outside the self-referenced baseline this window.
        fresh_hot_bins: usize,
        /// Longest consecutive-window run over those bins, this window
        /// included.
        longest_run: u32,
    },
}

/// One detector's scalar judgement of one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    /// The test statistic (Euclidean distance, anomaly count,
    /// persistence run length, …).
    pub statistic: f64,
    /// The decision threshold in effect.
    pub threshold: f64,
    /// Detector-specific evidence.
    pub detail: ScoreDetail,
}

/// One detector's vote on one observation, as recorded in pipeline
/// outcomes and alarms.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorVerdict {
    /// [`Detector::name`] of the voting detector.
    pub detector: &'static str,
    /// Whether the detector voted suspected.
    pub suspected: bool,
    /// The score behind the vote.
    pub score: Score,
}

/// A pluggable detection algorithm (see module docs).
///
/// `score` must be pure (no interior mutation, no randomness): the
/// pipeline calls it from worker threads and requires bit-identical
/// results for every worker count. State updates belong in `absorb`,
/// which the pipeline calls serially, in observation order, after the
/// fused decision.
pub trait Detector: fmt::Debug + Send + Sync {
    /// Short stable identifier ("euclidean", "spectral", …).
    fn name(&self) -> &'static str;

    /// The observation domain this detector votes on.
    fn domain(&self) -> DetectorDomain;

    /// The feature slots this detector reads.
    fn feature_plan(&self) -> FeaturePlan;

    /// Fits the detector on golden material. Reference-free detectors
    /// reset their state and succeed on any context.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the context lacks a required
    /// slot; forwarded fitting errors otherwise.
    fn fit(&mut self, ctx: &GoldenContext<'_>) -> Result<(), TrustError>;

    /// Fits the detector from a [`BaselineSource`]. The `Golden` arm
    /// delegates to [`Self::fit`] bit-identically; the default
    /// `SelfCalibrating` arm errors — detectors that can learn their
    /// baseline from live traffic override this (and feed the learned
    /// state through [`Self::calibrate`]).
    ///
    /// # Errors
    ///
    /// Forwarded [`Self::fit`] errors for `Golden`;
    /// [`TrustError::InvalidParameter`] for an unsupported
    /// `SelfCalibrating` source.
    fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        match source {
            BaselineSource::Golden(ctx) => self.fit(ctx),
            BaselineSource::SelfCalibrating(_) => Err(TrustError::InvalidParameter {
                what: "detector does not support a self-calibrating baseline",
            }),
        }
    }

    /// Whether the detector is ready to score.
    fn is_fitted(&self) -> bool;

    /// The detector's explicit readiness judgement. The default derives
    /// it from [`Self::is_fitted`], assuming the per-encryption golden
    /// requirement; detectors with a window requirement or a
    /// self-calibrating warm-up override this to tell the truth.
    fn readiness(&self) -> DetectorReadiness {
        if self.is_fitted() {
            DetectorReadiness::Ready
        } else {
            DetectorReadiness::NeedsGoldenTraces
        }
    }

    /// Serial self-calibration hook, called by the pipeline after
    /// [`Self::absorb`] with the current sensor-health state. Detectors
    /// fitted from a [`BaselineSource::SelfCalibrating`] feed their
    /// rolling baseline here, and must skip the update when the sensor
    /// is not [`SensorHealth::Healthy`] — a faulty channel must never
    /// poison the learned normal. The default does nothing.
    fn calibrate(&mut self, frame: &FeatureFrame<'_>, score: &Score, health: SensorHealth) {
        let _ = (frame, score, health);
    }

    /// Scores one observation. Pure — see the trait docs.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the detector is unfitted or
    /// the frame lacks a slot its [`Self::feature_plan`] declared;
    /// forwarded scoring errors otherwise.
    fn score(&self, frame: &FeatureFrame<'_>) -> Result<Score, TrustError>;

    /// Turns a score into a suspected/clean vote. The default rule is
    /// `statistic > threshold` (the paper's strict Eq. 1 comparison).
    fn verdict(&self, score: &Score) -> bool {
        score.statistic > score.threshold
    }

    /// Serial post-decision state update for stateful detectors. The
    /// default does nothing.
    fn absorb(&mut self, frame: &FeatureFrame<'_>, score: &Score) {
        let _ = (frame, score);
    }

    /// The fitted projection this detector can lend the shared
    /// featurizer (the first registered provider wins).
    fn projector(&self) -> Option<&GoldenFingerprint> {
        None
    }

    /// The Welch settings this detector can lend the shared featurizer
    /// (the first registered provider wins).
    fn welch_spec(&self) -> Option<WelchSpec> {
        None
    }
}

/// The paper's Eq. 1 time-domain detector behind the [`Detector`]
/// trait: Euclidean distance of the projected trace to the golden
/// centroid, against the `EDth` threshold.
///
/// Fitted from a [`BaselineSource::SelfCalibrating`] instead, the
/// detector learns a [`RollingBaseline`] from live traffic: raw RMS
/// features (no golden PCA exists without golden traces) against the
/// rolling robust centre, with the `median + k × MAD` threshold. During
/// the warm-up it scores a benign `0 / 1` so it can never vote
/// suspected before arming.
#[derive(Debug, Clone)]
pub struct EuclideanDetector {
    config: FingerprintConfig,
    fingerprint: Option<GoldenFingerprint>,
    selfcal: Option<RollingBaseline>,
}

impl EuclideanDetector {
    /// Wraps an already-fitted fingerprint.
    pub fn new(fingerprint: GoldenFingerprint) -> Self {
        Self {
            config: fingerprint.config(),
            fingerprint: Some(fingerprint),
            selfcal: None,
        }
    }

    /// An unfitted detector that will fit itself from a
    /// [`GoldenContext`]'s traces (or from live traffic through a
    /// self-calibrating [`BaselineSource`]).
    pub fn from_config(config: FingerprintConfig) -> Self {
        Self {
            config,
            fingerprint: None,
            selfcal: None,
        }
    }

    /// The fitted fingerprint, if any (`None` in self-calibrating
    /// mode — there is no golden model to expose).
    pub fn fingerprint(&self) -> Option<&GoldenFingerprint> {
        self.fingerprint.as_ref()
    }

    /// The rolling baseline, when fitted from a self-calibrating
    /// source.
    pub fn rolling_baseline(&self) -> Option<&RollingBaseline> {
        self.selfcal.as_ref()
    }
}

impl Detector for EuclideanDetector {
    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn domain(&self) -> DetectorDomain {
        DetectorDomain::PerEncryption
    }

    fn feature_plan(&self) -> FeaturePlan {
        FeaturePlan {
            // Self-calibrating mode scores raw RMS features — there is
            // no golden projection to request from the featurizer.
            needs_projection: self.selfcal.is_none(),
            needs_spectrum: false,
        }
    }

    fn fit(&mut self, ctx: &GoldenContext<'_>) -> Result<(), TrustError> {
        let traces = ctx.traces.ok_or(TrustError::InvalidParameter {
            what: "euclidean detector needs golden traces to fit",
        })?;
        self.fingerprint = Some(GoldenFingerprint::fit(traces, self.config)?);
        self.selfcal = None;
        Ok(())
    }

    fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        match source {
            BaselineSource::Golden(ctx) => self.fit(ctx),
            BaselineSource::SelfCalibrating(cfg) => {
                self.fingerprint = None;
                self.selfcal = Some(RollingBaseline::new(*cfg)?);
                Ok(())
            }
        }
    }

    fn is_fitted(&self) -> bool {
        self.fingerprint.is_some() || self.selfcal.is_some()
    }

    fn readiness(&self) -> DetectorReadiness {
        if self.fingerprint.is_some() {
            return DetectorReadiness::Ready;
        }
        match &self.selfcal {
            Some(rb) if rb.is_armed() => DetectorReadiness::Ready,
            Some(rb) => DetectorReadiness::Calibrating {
                seen: rb.seen().min(u64::from(u32::MAX)) as u32,
                required: rb.required().min(u32::MAX as usize) as u32,
            },
            None => DetectorReadiness::NeedsGoldenTraces,
        }
    }

    fn score(&self, frame: &FeatureFrame<'_>) -> Result<Score, TrustError> {
        if let Some(rb) = &self.selfcal {
            if !rb.is_armed() {
                // Warm-up: benign by construction (0 < 1 never votes).
                return Ok(Score {
                    statistic: 0.0,
                    threshold: 1.0,
                    detail: ScoreDetail::None,
                });
            }
            telemetry::counter("fingerprint.evaluations", 1);
            let feats = bin_rms(frame.samples(), rb.config().rms_bin)?;
            return Ok(Score {
                statistic: rb.distance(&feats)?,
                threshold: rb.threshold()?,
                detail: ScoreDetail::None,
            });
        }
        let fp = self
            .fingerprint
            .as_ref()
            .ok_or(TrustError::InvalidParameter {
                what: "euclidean detector is not fitted",
            })?;
        telemetry::counter("fingerprint.evaluations", 1);
        let projection = frame.projection().ok_or(TrustError::InvalidParameter {
            what: "feature frame is missing the projection",
        })?;
        let distance = fp.distance_of_projection(projection)?;
        Ok(Score {
            statistic: distance,
            threshold: fp.threshold(),
            detail: ScoreDetail::None,
        })
    }

    fn calibrate(&mut self, frame: &FeatureFrame<'_>, score: &Score, health: SensorHealth) {
        let Some(rb) = &mut self.selfcal else {
            return;
        };
        // Health gate: an unhealthy channel must not shape the normal.
        if health != SensorHealth::Healthy {
            telemetry::counter("baseline.calibrate_skips", 1);
            return;
        }
        // Verdict gate: once armed, suspected observations are kept out
        // of the drift tracking so an attacker cannot walk the centre.
        if rb.is_armed() && score.statistic > score.threshold {
            telemetry::counter("baseline.calibrate_skips", 1);
            return;
        }
        let update =
            bin_rms(frame.samples(), rb.config().rms_bin).and_then(|feats| rb.observe(&feats));
        if update.is_err() {
            telemetry::counter("baseline.calibrate_skips", 1);
        }
    }

    fn projector(&self) -> Option<&GoldenFingerprint> {
        self.fingerprint.as_ref()
    }
}

/// The paper's frequency-domain A2 detector behind the [`Detector`]
/// trait: bin-wise comparison of the window's Welch spectrum against
/// the golden spectrum. The statistic is the anomalous-spot count
/// against a threshold of zero, so any spot votes suspected.
///
/// Fitted from a [`BaselineSource::SelfCalibrating`] instead, the
/// detector collects a warm-up ring of live windows and synthesizes its
/// own golden window as the per-sample median across the ring (a robust
/// estimate: a single glitched window cannot shape it), then fits the
/// inner [`SpectralDetector`] on that. The synthesized reference is
/// frozen at arming — spectra do not drift-track.
#[derive(Debug, Clone)]
pub struct SpectralWindowDetector {
    config: SpectralConfig,
    detector: Option<SpectralDetector>,
    selfcal: Option<WindowWarmup>,
}

/// Warm-up ring of a self-calibrating [`SpectralWindowDetector`].
#[derive(Debug, Clone)]
struct WindowWarmup {
    required: usize,
    ring: Vec<Vec<f64>>,
    sample_rate_hz: Option<f64>,
}

impl SpectralWindowDetector {
    /// Wraps an already-fitted spectral detector.
    pub fn new(detector: SpectralDetector) -> Self {
        Self {
            config: detector.config(),
            detector: Some(detector),
            selfcal: None,
        }
    }

    /// An unfitted detector that will fit itself from a
    /// [`GoldenContext`]'s window (or from live traffic through a
    /// self-calibrating [`BaselineSource`]).
    pub fn from_config(config: SpectralConfig) -> Self {
        Self {
            config,
            detector: None,
            selfcal: None,
        }
    }

    /// The fitted inner detector, if any.
    pub fn inner(&self) -> Option<&SpectralDetector> {
        self.detector.as_ref()
    }

    /// Fits the inner detector on the per-sample median of the warm-up
    /// ring. A failed fit restarts the warm-up instead of wedging.
    fn arm_from_warmup(&mut self) {
        let Some(w) = &self.selfcal else {
            return;
        };
        let (Some(rate), Some(len)) = (w.sample_rate_hz, w.ring.first().map(Vec::len)) else {
            return;
        };
        let mut column = Vec::with_capacity(w.ring.len());
        let mut samples = Vec::with_capacity(len);
        for i in 0..len {
            column.clear();
            column.extend(w.ring.iter().map(|r| r[i]));
            samples.push(median(&column));
        }
        let synthetic = VoltageTrace::new(samples, rate);
        match SpectralDetector::fit(&synthetic, self.config) {
            Ok(det) => self.detector = Some(det),
            Err(_) => {
                telemetry::counter("baseline.calibrate_skips", 1);
                if let Some(w) = &mut self.selfcal {
                    w.ring.clear();
                }
            }
        }
    }
}

impl Detector for SpectralWindowDetector {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn domain(&self) -> DetectorDomain {
        DetectorDomain::ContinuousWindow
    }

    fn feature_plan(&self) -> FeaturePlan {
        FeaturePlan {
            needs_projection: false,
            needs_spectrum: true,
        }
    }

    fn fit(&mut self, ctx: &GoldenContext<'_>) -> Result<(), TrustError> {
        let window = ctx.window.ok_or(TrustError::InvalidParameter {
            what: "spectral detector needs a golden window to fit",
        })?;
        self.detector = Some(SpectralDetector::fit(window, self.config)?);
        self.selfcal = None;
        Ok(())
    }

    fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        match source {
            BaselineSource::Golden(ctx) => self.fit(ctx),
            BaselineSource::SelfCalibrating(cfg) => {
                cfg.validate()?;
                self.detector = None;
                self.selfcal = Some(WindowWarmup {
                    required: cfg.warmup,
                    ring: Vec::with_capacity(cfg.warmup),
                    sample_rate_hz: None,
                });
                Ok(())
            }
        }
    }

    fn is_fitted(&self) -> bool {
        self.detector.is_some() || self.selfcal.is_some()
    }

    fn readiness(&self) -> DetectorReadiness {
        if self.detector.is_some() {
            return DetectorReadiness::Ready;
        }
        match &self.selfcal {
            Some(w) => DetectorReadiness::Calibrating {
                seen: w.ring.len().min(u32::MAX as usize) as u32,
                required: w.required.min(u32::MAX as usize) as u32,
            },
            None => DetectorReadiness::NeedsGoldenWindow,
        }
    }

    fn score(&self, frame: &FeatureFrame<'_>) -> Result<Score, TrustError> {
        let Some(det) = self.detector.as_ref() else {
            if self.selfcal.is_some() {
                // Warm-up: zero spots against the zero threshold never
                // votes suspected (the verdict comparison is strict).
                return Ok(Score {
                    statistic: 0.0,
                    threshold: 0.0,
                    detail: ScoreDetail::Spectral {
                        anomalies: Vec::new(),
                    },
                });
            }
            return Err(TrustError::InvalidParameter {
                what: "spectral detector is not fitted",
            });
        };
        let spectrum = frame.spectrum().ok_or(TrustError::InvalidParameter {
            what: "feature frame is missing the spectrum",
        })?;
        let anomalies = det.compare_spectrum(spectrum);
        Ok(Score {
            statistic: anomalies.len() as f64,
            threshold: 0.0,
            detail: ScoreDetail::Spectral { anomalies },
        })
    }

    fn calibrate(&mut self, frame: &FeatureFrame<'_>, _score: &Score, health: SensorHealth) {
        if self.detector.is_some() {
            return;
        }
        let Some(w) = &mut self.selfcal else {
            return;
        };
        if health != SensorHealth::Healthy {
            telemetry::counter("baseline.calibrate_skips", 1);
            return;
        }
        let samples = frame.samples();
        let rate = frame.sample_rate_hz();
        let compatible = match (w.ring.first(), w.sample_rate_hz, rate) {
            (None, _, Some(_)) => true,
            (Some(first), Some(expected), Some(actual)) => {
                first.len() == samples.len() && (actual - expected).abs() <= 1e-6 * expected
            }
            _ => false,
        };
        if !compatible || samples.iter().any(|x| !x.is_finite()) {
            telemetry::counter("baseline.calibrate_skips", 1);
            return;
        }
        w.sample_rate_hz = rate;
        w.ring.push(samples.to_vec());
        if w.ring.len() >= w.required {
            self.arm_from_warmup();
        }
    }

    fn welch_spec(&self) -> Option<WelchSpec> {
        if let Some(d) = self.detector.as_ref() {
            return Some(WelchSpec {
                window: self.config.window,
                segments: self.config.welch_segments,
                expected_rate_hz: Some(d.golden_spectrum().sample_rate_hz()),
            });
        }
        // Calibrating: lend the configured Welch settings with no rate
        // pin, so the pipeline can featurize warm-up windows.
        self.selfcal.as_ref().map(|_| WelchSpec {
            window: self.config.window,
            segments: self.config.welch_segments,
            expected_rate_hz: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::SpectralConfig;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TraceSet::new(
            (0..n)
                .map(|_| {
                    (0..256)
                        .map(|j| {
                            amplitude * ((j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                        })
                        .collect()
                })
                .collect(),
            640e6,
        )
        .unwrap()
    }

    #[test]
    fn euclidean_detector_matches_the_fingerprint() {
        let golden = synthetic_set(16, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let det = EuclideanDetector::new(fp.clone());
        assert!(det.is_fitted());
        let suspect_set = synthetic_set(1, 1.4, 3);
        let t = &suspect_set.traces()[0];
        let mut frame = FeatureFrame::new(t);
        frame.set_projection(fp.project(t).unwrap());
        let score = det.score(&frame).unwrap();
        let verdict = fp.evaluate(t).unwrap();
        assert_eq!(score.statistic, verdict.distance);
        assert_eq!(score.threshold, verdict.threshold);
        assert_eq!(det.verdict(&score), verdict.trojan_suspected);
    }

    #[test]
    fn euclidean_detector_fits_from_context() {
        let golden = synthetic_set(16, 1.0, 1);
        let mut det = EuclideanDetector::from_config(FingerprintConfig::default());
        assert!(!det.is_fitted());
        let frame = FeatureFrame::new(&[0.0]);
        assert!(det.score(&frame).is_err());
        assert!(det.fit(&GoldenContext::new()).is_err());
        det.fit(&GoldenContext::new().with_traces(&golden)).unwrap();
        assert!(det.is_fitted());
        assert!(det.projector().is_some());
    }

    #[test]
    fn spectral_detector_scores_the_shared_spectrum() {
        let fs = 640e6;
        let tone = |freqs: &[(f64, f64)], seed: u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            VoltageTrace::new(
                (0..16384)
                    .map(|i| {
                        let t = i as f64 / fs;
                        freqs
                            .iter()
                            .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                            .sum::<f64>()
                            + 0.01 * rng.gen_range(-1.0..1.0)
                    })
                    .collect(),
                fs,
            )
        };
        let golden = tone(&[(10e6, 1.0)], 1);
        let inner = SpectralDetector::fit(&golden, SpectralConfig::default()).unwrap();
        let det = SpectralWindowDetector::new(inner.clone());
        let spec = det.welch_spec().unwrap();
        assert_eq!(spec.expected_rate_hz, Some(fs));

        let suspect = tone(&[(10e6, 1.0), (25e6, 0.4)], 2);
        let spectrum = inner.suspect_spectrum(&suspect).unwrap();
        let mut frame = FeatureFrame::window(suspect.samples(), fs);
        frame.set_spectrum(spectrum);
        let score = det.score(&frame).unwrap();
        assert!(det.verdict(&score));
        let expected = inner.compare(&suspect).unwrap();
        assert_eq!(score.statistic, expected.len() as f64);
        match &score.detail {
            ScoreDetail::Spectral { anomalies } => assert_eq!(anomalies, &expected),
            other => panic!("expected spectral detail, got {other:?}"),
        }
    }

    #[test]
    fn domain_labels_are_stable() {
        assert_eq!(DetectorDomain::PerEncryption.label(), "per_encryption");
        assert_eq!(
            DetectorDomain::ContinuousWindow.label(),
            "continuous_window"
        );
    }
}
