//! Trace → feature-vector reduction, and the shared [`FeatureFrame`]
//! every pipeline stage reads from.
//!
//! Raw sensor traces (hundreds of samples per encryption) are reduced to
//! an energy profile before fingerprinting: the RMS of consecutive sample
//! bins. This keeps the data-dependent within-cycle structure the
//! detectors need while making PCA tractable and the comparison robust to
//! sample-level phase jitter.
//!
//! [`FeatureFrame`] is the "compute once, read everywhere" contract of
//! the [`pipeline`](crate::pipeline): the sanitizer's energy screen, the
//! Euclidean detector's projection, and both spectral detectors' FFT all
//! used to recompute the same transforms per consumer; the pipeline now
//! materializes each transform exactly once per trace and hands every
//! consumer the same frame.

use crate::TrustError;
use emtrust_dsp::spectrum::Spectrum;

/// Default bin width (samples per feature) — 8 samples at 640 MS/s is
/// one eighth of a 10 MHz clock cycle.
pub const DEFAULT_RMS_BIN: usize = 8;

/// Reduces a trace to per-bin RMS features.
///
/// A trailing partial bin is included (RMS over the remaining samples).
///
/// # Errors
///
/// Returns [`TrustError::InvalidParameter`] if `bin == 0` or `samples`
/// is empty.
///
/// # Examples
///
/// ```
/// use emtrust::features::bin_rms;
///
/// let f = bin_rms(&[3.0, -4.0, 0.0, 5.0], 2)?;
/// assert_eq!(f.len(), 2);
/// assert!((f[0] - (12.5f64).sqrt()).abs() < 1e-12);
/// # Ok::<(), emtrust::TrustError>(())
/// ```
pub fn bin_rms(samples: &[f64], bin: usize) -> Result<Vec<f64>, TrustError> {
    if bin == 0 {
        return Err(TrustError::InvalidParameter {
            what: "bin width must be positive",
        });
    }
    if samples.is_empty() {
        return Err(TrustError::InvalidParameter {
            what: "trace must be non-empty",
        });
    }
    Ok(samples
        .chunks(bin)
        .map(|c| (c.iter().map(|x| x * x).sum::<f64>() / c.len() as f64).sqrt())
        .collect())
}

/// L2 norm of a vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// The transforms of one observation, computed once and shared by every
/// pipeline stage (see module docs).
///
/// A frame starts as the raw samples and is enriched stage by stage:
/// the featurizer fills the slots the registered detectors declared in
/// their [`FeaturePlan`](crate::detector::FeaturePlan), and each
/// consumer reads the slot instead of recomputing the transform. Slots
/// the active configuration does not need stay `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureFrame<'a> {
    samples: &'a [f64],
    sample_rate_hz: Option<f64>,
    rms: Option<Vec<f64>>,
    energy_ratio: Option<f64>,
    projection: Option<Vec<f64>>,
    spectrum: Option<Spectrum>,
}

impl<'a> FeatureFrame<'a> {
    /// A frame holding only the raw samples (per-encryption trace).
    pub fn new(samples: &'a [f64]) -> Self {
        Self {
            samples,
            sample_rate_hz: None,
            rms: None,
            energy_ratio: None,
            projection: None,
            spectrum: None,
        }
    }

    /// A frame for a continuous monitoring window sampled at
    /// `sample_rate_hz`.
    pub fn window(samples: &'a [f64], sample_rate_hz: f64) -> Self {
        Self {
            sample_rate_hz: Some(sample_rate_hz),
            ..Self::new(samples)
        }
    }

    /// The raw samples.
    pub fn samples(&self) -> &'a [f64] {
        self.samples
    }

    /// The sample rate — `Some` only for continuous windows.
    pub fn sample_rate_hz(&self) -> Option<f64> {
        self.sample_rate_hz
    }

    /// The per-bin RMS energy features ([`bin_rms`]), if computed.
    pub fn rms(&self) -> Option<&[f64]> {
        self.rms.as_deref()
    }

    /// Feature-energy ratio relative to the golden scale, if computed.
    pub fn energy_ratio(&self) -> Option<f64> {
        self.energy_ratio
    }

    /// The detection-space projection (scale + optional PCA), if
    /// computed.
    pub fn projection(&self) -> Option<&[f64]> {
        self.projection.as_deref()
    }

    /// The Welch spectrum of a continuous window, if computed.
    pub fn spectrum(&self) -> Option<&Spectrum> {
        self.spectrum.as_ref()
    }

    /// Stores the RMS energy features.
    pub fn set_rms(&mut self, rms: Vec<f64>) {
        self.rms = Some(rms);
    }

    /// Stores the energy ratio.
    pub fn set_energy_ratio(&mut self, ratio: f64) {
        self.energy_ratio = Some(ratio);
    }

    /// Stores the detection-space projection.
    pub fn set_projection(&mut self, projection: Vec<f64>) {
        self.projection = Some(projection);
    }

    /// Stores the Welch spectrum.
    pub fn set_spectrum(&mut self, spectrum: Spectrum) {
        self.spectrum = Some(spectrum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_rms_reduces_length() {
        let f = bin_rms(&[1.0; 64], 8).unwrap();
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn partial_trailing_bin_is_kept() {
        let f = bin_rms(&[2.0; 10], 4).unwrap();
        assert_eq!(f.len(), 3);
        assert!((f[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_scaling_scales_features() {
        let base: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let loud: Vec<f64> = base.iter().map(|x| 2.0 * x).collect();
        let fb = bin_rms(&base, 8).unwrap();
        let fl = bin_rms(&loud, 8).unwrap();
        for (a, b) in fb.iter().zip(&fl) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(bin_rms(&[], 4).is_err());
        assert!(bin_rms(&[1.0], 0).is_err());
    }

    #[test]
    fn l2_norm_is_euclidean_length() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }
}
