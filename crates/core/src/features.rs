//! Trace → feature-vector reduction.
//!
//! Raw sensor traces (hundreds of samples per encryption) are reduced to
//! an energy profile before fingerprinting: the RMS of consecutive sample
//! bins. This keeps the data-dependent within-cycle structure the
//! detectors need while making PCA tractable and the comparison robust to
//! sample-level phase jitter.

use crate::TrustError;

/// Default bin width (samples per feature) — 8 samples at 640 MS/s is
/// one eighth of a 10 MHz clock cycle.
pub const DEFAULT_RMS_BIN: usize = 8;

/// Reduces a trace to per-bin RMS features.
///
/// A trailing partial bin is included (RMS over the remaining samples).
///
/// # Errors
///
/// Returns [`TrustError::InvalidParameter`] if `bin == 0` or `samples`
/// is empty.
///
/// # Examples
///
/// ```
/// use emtrust::features::bin_rms;
///
/// let f = bin_rms(&[3.0, -4.0, 0.0, 5.0], 2)?;
/// assert_eq!(f.len(), 2);
/// assert!((f[0] - (12.5f64).sqrt()).abs() < 1e-12);
/// # Ok::<(), emtrust::TrustError>(())
/// ```
pub fn bin_rms(samples: &[f64], bin: usize) -> Result<Vec<f64>, TrustError> {
    if bin == 0 {
        return Err(TrustError::InvalidParameter {
            what: "bin width must be positive",
        });
    }
    if samples.is_empty() {
        return Err(TrustError::InvalidParameter {
            what: "trace must be non-empty",
        });
    }
    Ok(samples
        .chunks(bin)
        .map(|c| (c.iter().map(|x| x * x).sum::<f64>() / c.len() as f64).sqrt())
        .collect())
}

/// L2 norm of a vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_rms_reduces_length() {
        let f = bin_rms(&[1.0; 64], 8).unwrap();
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn partial_trailing_bin_is_kept() {
        let f = bin_rms(&[2.0; 10], 4).unwrap();
        assert_eq!(f.len(), 3);
        assert!((f[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_scaling_scales_features() {
        let base: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let loud: Vec<f64> = base.iter().map(|x| 2.0 * x).collect();
        let fb = bin_rms(&base, 8).unwrap();
        let fl = bin_rms(&loud, 8).unwrap();
        for (a, b) in fb.iter().zip(&fl) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(bin_rms(&[], 4).is_err());
        assert!(bin_rms(&[1.0], 0).is_err());
    }

    #[test]
    fn l2_norm_is_euclidean_length() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }
}
