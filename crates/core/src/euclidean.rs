//! Experiment-level Euclidean-distance study (paper §IV-C and Fig. 6 a–h).
//!
//! Wraps the fingerprint machinery into the comparisons the paper
//! reports: one golden fingerprint per channel, then per-Trojan centroid
//! distances, verdicts, and the pairwise-distance histograms.

use crate::acquisition::{TestBench, TraceSet};
use crate::fingerprint::{FingerprintConfig, GoldenFingerprint};
use crate::TrustError;
use emtrust_dsp::histogram::Histogram;
use emtrust_silicon::Channel;
use emtrust_trojan::TrojanKind;

/// One Trojan's detection outcome on one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TrojanDistance {
    /// Which Trojan was armed.
    pub kind: TrojanKind,
    /// Distance between golden and Trojan-activated centroids
    /// (the paper's §IV-C scalar).
    pub centroid_distance: f64,
    /// The golden Eq. 1 threshold.
    pub threshold: f64,
    /// Whether the Trojan is detected: either the set-level centroid
    /// distance exceeds the Eq. 1 threshold, or the majority of
    /// individual traces do (the runtime monitor alarms per trace).
    pub detected: bool,
    /// Fraction of individual Trojan-activated traces over threshold.
    pub per_trace_detection_rate: f64,
}

/// Runs the §IV-C study for one channel: fit on golden traces, then arm
/// each Trojan in turn and measure distances.
///
/// # Errors
///
/// Propagates acquisition and fingerprinting errors.
pub fn trojan_distance_study(
    bench: &TestBench<'_>,
    key: [u8; 16],
    kinds: &[TrojanKind],
    n_traces: usize,
    channel: Channel,
    config: FingerprintConfig,
    seed: u64,
) -> Result<Vec<TrojanDistance>, TrustError> {
    // One shared stimulus: golden and Trojan-activated sets replay the
    // same block so the distance isolates the Trojan's contribution.
    let stimulus = crate::acquisition::Stimulus::Fixed(derive_block(seed));
    let golden = bench.collect_with(key, stimulus, n_traces, None, channel, seed)?;
    let fp = GoldenFingerprint::fit(&golden, config)?;
    kinds
        .iter()
        .map(|&kind| {
            let suspect =
                bench.collect_with(key, stimulus, n_traces, Some(kind), channel, seed ^ 0xABCD)?;
            distance_row(&fp, kind, &suspect)
        })
        .collect()
}

fn derive_block(seed: u64) -> [u8; 16] {
    use rand::{Rng, SeedableRng};
    rand::rngs::StdRng::seed_from_u64(seed ^ 0x97).gen()
}

fn distance_row(
    fp: &GoldenFingerprint,
    kind: TrojanKind,
    suspect: &TraceSet,
) -> Result<TrojanDistance, TrustError> {
    let centroid_distance = fp.centroid_distance(suspect)?;
    let dists = fp.set_distances(suspect)?;
    let over = dists.iter().filter(|&&d| d > fp.threshold()).count();
    let per_trace_detection_rate = over as f64 / dists.len().max(1) as f64;
    Ok(TrojanDistance {
        kind,
        centroid_distance,
        threshold: fp.threshold(),
        detected: centroid_distance > fp.threshold() || per_trace_detection_rate >= 0.5,
        per_trace_detection_rate,
    })
}

/// The two histograms of one Fig. 6 panel: golden-golden pairwise
/// distances (red) vs golden-Trojan cross distances (blue), over a shared
/// bin layout.
#[derive(Debug, Clone, PartialEq)]
pub struct DistancePanel {
    /// Which Trojan the panel shows.
    pub kind: TrojanKind,
    /// Pairwise distances within the golden set.
    pub golden: Histogram,
    /// Golden-to-Trojan cross distances.
    pub trojan: Histogram,
    /// Overlap coefficient between the two normalized distributions
    /// (1 = indistinguishable).
    pub overlap: f64,
    /// Separation of the distribution peaks in units of the golden peak
    /// position.
    pub peak_shift: f64,
}

/// Builds one Fig. 6 panel for a Trojan on a channel.
///
/// # Errors
///
/// Propagates acquisition/fingerprinting/histogram errors.
pub fn distance_panel(
    bench: &TestBench<'_>,
    key: [u8; 16],
    kind: TrojanKind,
    n_traces: usize,
    channel: Channel,
    bins: usize,
    seed: u64,
) -> Result<DistancePanel, TrustError> {
    let stimulus = crate::acquisition::Stimulus::Fixed(derive_block(seed));
    let golden_set = bench.collect_with(key, stimulus, n_traces, None, channel, seed)?;
    // Fig. 6 is computed on the raw measured samples ("we only perform the
    // analysis on the raw data from [the] on-chip sensor directly"): no
    // binning, no PCA.
    let raw_config = FingerprintConfig {
        rms_bin: 1,
        pca_components: None,
        threshold_margin: 1.0,
        ..FingerprintConfig::default()
    };
    let fp = GoldenFingerprint::fit(&golden_set, raw_config)?;
    let suspect =
        bench.collect_with(key, stimulus, n_traces, Some(kind), channel, seed ^ 0x5A5A)?;
    let gg = fp.golden_pairwise()?;
    let gt = fp.cross_distances(&suspect)?;
    let hi = gg
        .iter()
        .chain(&gt)
        .fold(0.0f64, |m, &d| m.max(d))
        .max(1e-12)
        * 1.05;
    let golden = Histogram::from_values(&gg, 0.0, hi, bins)?;
    let trojan = Histogram::from_values(&gt, 0.0, hi, bins)?;
    let overlap = golden.overlap(&trojan)?;
    let g_peak = golden.peak().unwrap_or(0.0);
    let t_peak = trojan.peak().unwrap_or(0.0);
    let peak_shift = if g_peak > 0.0 {
        (t_peak - g_peak) / g_peak
    } else {
        0.0
    };
    Ok(DistancePanel {
        kind,
        golden,
        trojan,
        overlap,
        peak_shift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_trojan::ProtectedChip;

    const KEY: [u8; 16] = *b"distance-studyke";

    #[test]
    fn t4_is_detected_on_the_onchip_channel() {
        let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
        let bench = TestBench::simulation(&chip).unwrap();
        let rows = trojan_distance_study(
            &bench,
            KEY,
            &[TrojanKind::T4PowerDegrader],
            12,
            Channel::OnChipSensor,
            FingerprintConfig::default(),
            11,
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].detected, "T4 must be detected: {rows:?}");
        assert!(rows[0].per_trace_detection_rate > 0.5);
    }

    #[test]
    fn panel_shows_separation_for_t4_onchip() {
        let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
        let bench = TestBench::simulation(&chip).unwrap();
        let panel = distance_panel(
            &bench,
            KEY,
            TrojanKind::T4PowerDegrader,
            12,
            Channel::OnChipSensor,
            20,
            13,
        )
        .unwrap();
        assert!(
            panel.peak_shift > 0.3,
            "T4 peak must shift visibly: {}",
            panel.peak_shift
        );
        assert!(panel.overlap < 0.6, "overlap {}", panel.overlap);
    }

    #[test]
    fn external_probe_blurs_the_panel() {
        // Fig. 6's contrast is measured on the fabricated chip, where the
        // external probe's measurement chain adds noise the on-chip sensor
        // does not see. T3 — the smallest Trojan — shows it most clearly:
        // panel (c) overlaps, panel (g) separates.
        let chip = ProtectedChip::with_trojans(&[TrojanKind::T3CdmaLeaker]);
        let bench = TestBench::silicon(&chip, 1).unwrap();
        let on = distance_panel(
            &bench,
            KEY,
            TrojanKind::T3CdmaLeaker,
            16,
            Channel::OnChipSensor,
            20,
            17,
        )
        .unwrap();
        let ext = distance_panel(
            &bench,
            KEY,
            TrojanKind::T3CdmaLeaker,
            16,
            Channel::ExternalProbe,
            20,
            17,
        )
        .unwrap();
        assert!(
            ext.overlap >= on.overlap,
            "external ({}) must overlap at least as much as on-chip ({})",
            ext.overlap,
            on.overlap
        );
        assert!(
            on.peak_shift > 2.0 * ext.peak_shift.max(0.0),
            "on-chip peak shift ({:.2}) must dwarf the external one ({:.2})",
            on.peak_shift,
            ext.peak_shift
        );
    }
}
