//! # emtrust-power
//!
//! Switching activity → transient supply current. This crate is the
//! reproduction's substitute for the paper's Hspice transistor-level
//! transient simulation (§IV-A, method of \[18\]):
//!
//! - every output toggle recorded by `emtrust-sim` deposits a charge
//!   impulse `Q = C_eff·V_DD` at `t = cycle·T + level·τ_gate` (the
//!   levelized switching time),
//! - every flip-flop draws its clock-load charge at each edge (the clock
//!   tree),
//! - a state-independent leakage floor runs underneath, extensible per
//!   cycle (Trojan T2's leakage-current channel injects here),
//! - an optional per-cell **weight vector** lets the EM solver obtain the
//!   flux-weighted current `Σ_c k_c·I_c(t)` in a single pass, without ever
//!   materializing per-cell waveforms.
//!
//! The result is a [`trace::CurrentTrace`]: uniformly sampled current in
//! amperes at `samples_per_cycle × f_clk`.

pub mod model;
pub mod tech;
pub mod trace;

pub use model::CurrentModel;
pub use tech::ClockConfig;
pub use trace::CurrentTrace;

use std::error::Error;
use std::fmt;

/// Errors produced by the power model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerError {
    /// A configuration value was out of range.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// A weight or leakage vector had the wrong length.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            PowerError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(PowerError::InvalidParameter { what: "x" }
            .to_string()
            .contains("x"));
        assert!(PowerError::LengthMismatch {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("expected 1"));
    }
}
