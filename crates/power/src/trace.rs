//! Uniformly sampled current waveforms.

/// A uniformly sampled current waveform in amperes.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentTrace {
    samples: Vec<f64>,
    sample_rate_hz: f64,
}

impl CurrentTrace {
    /// Wraps raw samples taken at `sample_rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive.
    pub fn new(samples: Vec<f64>, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            samples,
            sample_rate_hz,
        }
    }

    /// The samples in amperes.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable access (the A2 model and measurement chain inject here).
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the trace, returning the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Sample rate in hertz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate_hz
    }

    /// Total charge `∫ I dt` in coulombs.
    pub fn total_charge_c(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.sample_rate_hz
    }

    /// Mean current in amperes.
    pub fn mean_a(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The discrete time derivative `dI/dt` (length `len − 1`), in A/s —
    /// the quantity Faraday's law turns into an emf.
    pub fn derivative(&self) -> Vec<f64> {
        self.samples
            .windows(2)
            .map(|w| (w[1] - w[0]) * self.sample_rate_hz)
            .collect()
    }

    /// Adds another trace sample-wise (shorter trace zero-extended).
    ///
    /// # Panics
    ///
    /// Panics if the sample rates differ.
    pub fn add_assign(&mut self, other: &CurrentTrace) {
        assert!(
            (self.sample_rate_hz - other.sample_rate_hz).abs() < 1e-6,
            "sample rates must match"
        );
        if other.samples.len() > self.samples.len() {
            self.samples.resize(other.samples.len(), 0.0);
        }
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let t = CurrentTrace::new(vec![1.0, 2.0, 3.0], 10.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.duration_s() - 0.3).abs() < 1e-12);
        assert!((t.mean_a() - 2.0).abs() < 1e-12);
        assert!((t.total_charge_c() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn derivative_is_finite_difference() {
        let t = CurrentTrace::new(vec![0.0, 1.0, 3.0], 2.0);
        assert_eq!(t.derivative(), vec![2.0, 4.0]);
    }

    #[test]
    fn add_assign_extends_and_sums() {
        let mut a = CurrentTrace::new(vec![1.0, 1.0], 10.0);
        let b = CurrentTrace::new(vec![1.0, 2.0, 3.0], 10.0);
        a.add_assign(&b);
        assert_eq!(a.samples(), &[2.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "sample rates must match")]
    fn add_assign_checks_rates() {
        let mut a = CurrentTrace::new(vec![1.0], 10.0);
        a.add_assign(&CurrentTrace::new(vec![1.0], 20.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_is_rejected() {
        let _ = CurrentTrace::new(vec![], 0.0);
    }

    #[test]
    fn empty_trace_statistics() {
        let t = CurrentTrace::new(vec![], 1.0);
        assert!(t.is_empty());
        assert_eq!(t.mean_a(), 0.0);
        assert_eq!(t.total_charge_c(), 0.0);
        assert!(t.derivative().is_empty());
    }
}
