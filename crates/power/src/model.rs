//! The activity → current synthesis model.

use crate::tech::ClockConfig;
use crate::trace::CurrentTrace;
use crate::PowerError;
use emtrust_netlist::cell::CellKind;
use emtrust_netlist::graph::Netlist;
use emtrust_netlist::library::Library;
use emtrust_sim::activity::ActivityTrace;

/// Fraction of a flip-flop's `C_eff` switched by its clock pins every
/// edge, data-independent (the clock tree's contribution).
const CLOCK_LOAD_FRACTION: f64 = 0.35;

/// Falling output transitions move slightly less supply charge than
/// rising ones (PMOS/NMOS asymmetry).
const FALL_CHARGE_FRACTION: f64 = 0.85;

/// Cycle-chunk granularity of [`CurrentModel::synthesize_with`].
///
/// The chunk layout is a pure function of the activity's cycle count and
/// this constant — never of the worker count — so the synthesized waveform
/// is bit-identical for every number of workers. Activities of at most
/// `CYCLE_CHUNK` cycles (every per-trace acquisition) render in a single
/// chunk and reproduce the serial reference numerics exactly.
pub const CYCLE_CHUNK: usize = 64;

/// Synthesizes transient current from switching activity.
///
/// # Examples
///
/// ```
/// use emtrust_netlist::graph::Netlist;
/// use emtrust_netlist::library::Library;
/// use emtrust_power::{ClockConfig, CurrentModel};
/// use emtrust_sim::engine::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("toggle");
/// let (q, d) = n.dff_deferred();
/// let nq = n.not(q);
/// n.connect_dff_d(d, nq);
/// n.mark_output("q", q);
///
/// let mut sim = Simulator::new(&n)?;
/// sim.settle();
/// sim.start_recording();
/// sim.run(4);
/// let activity = sim.take_recording();
///
/// let model = CurrentModel::new(Library::generic_180nm(), ClockConfig::reference());
/// let trace = model.synthesize(&n, &activity, None, None)?;
/// assert_eq!(trace.len(), 4 * 64);
/// assert!(trace.total_charge_c() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CurrentModel {
    library: Library,
    clock: ClockConfig,
}

impl CurrentModel {
    /// Creates a model over a characterized library and clock config.
    pub fn new(library: Library, clock: ClockConfig) -> Self {
        Self { library, clock }
    }

    /// The clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// The cell library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Synthesizes the supply-current waveform for `activity` recorded on
    /// `netlist`.
    ///
    /// - `weights`: optional per-cell factors (indexed by
    ///   [`emtrust_netlist::graph::CellId::index`]); when given, each
    ///   cell's contribution is scaled by its weight. Passing the EM
    ///   coupling kernel here yields the flux-weighted current whose time
    ///   derivative is the sensor emf.
    /// - `extra_leakage_a`: optional per-cycle additional leakage current
    ///   in amperes (Trojan T2's leakage channel), one entry per recorded
    ///   cycle. Applied with weight 1 (or the mean weight when weighting).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] if `weights` doesn't cover
    /// every cell or `extra_leakage_a` doesn't cover every cycle.
    pub fn synthesize(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        weights: Option<&[f64]>,
        extra_leakage_a: Option<&[f64]>,
    ) -> Result<CurrentTrace, PowerError> {
        self.synthesize_with(netlist, activity, weights, extra_leakage_a, 1)
    }

    /// [`Self::synthesize`] with the cycle loop fanned across `workers`
    /// threads in fixed chunks of [`CYCLE_CHUNK`] cycles.
    ///
    /// Each chunk renders its cycles into a private buffer (with enough
    /// tail room for deposits that spill past the chunk boundary) and the
    /// buffers are merged into the output strictly in chunk order, so the
    /// waveform is bit-identical for every `workers` value. Activities
    /// short enough for a single chunk are rendered directly into the
    /// output buffer, reproducing the serial path exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] if `weights` doesn't cover
    /// every cell or `extra_leakage_a` doesn't cover every cycle.
    pub fn synthesize_with(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        weights: Option<&[f64]>,
        extra_leakage_a: Option<&[f64]>,
        workers: usize,
    ) -> Result<CurrentTrace, PowerError> {
        let mut traces =
            self.synthesize_multi_impl(netlist, activity, &[weights], extra_leakage_a, workers)?;
        Ok(traces.swap_remove(0))
    }

    /// Synthesizes one waveform **per weight vector** from a single walk
    /// over the activity's events — the sensor-array path: one simulation
    /// pass, N coupling kernels, N flux-weighted currents.
    ///
    /// Every per-event charge is computed once and deposited into each
    /// weight set's buffer in set order, so the `k`-th output is
    /// bit-identical to `synthesize_with(netlist, activity,
    /// Some(weight_sets[k]), extra_leakage_a, workers)` at a fraction of
    /// the cost (the event walk and chunk bookkeeping are shared).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] if any weight vector doesn't
    /// cover every cell or `extra_leakage_a` doesn't cover every cycle,
    /// and [`PowerError::InvalidParameter`] for an empty weight-set list.
    pub fn synthesize_multi(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        weight_sets: &[&[f64]],
        extra_leakage_a: Option<&[f64]>,
        workers: usize,
    ) -> Result<Vec<CurrentTrace>, PowerError> {
        if weight_sets.is_empty() {
            return Err(PowerError::InvalidParameter {
                what: "synthesize_multi needs at least one weight vector",
            });
        }
        let sets: Vec<Option<&[f64]>> = weight_sets.iter().map(|w| Some(*w)).collect();
        self.synthesize_multi_impl(netlist, activity, &sets, extra_leakage_a, workers)
    }

    /// The pre-optimization scalar renderer: netlist/library lookups and
    /// a charge division on every event, one weight set, serial — the
    /// path [`Self::synthesize_with`] ran before the amplitude tables.
    ///
    /// Retained (not test-gated) for two jobs: equivalence tests assert
    /// the table-driven fast path reproduces it bit for bit, and
    /// `exp_throughput` times it as the before side of the hot-path
    /// ratio recorded in `BENCH_parallel.json`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize`].
    pub fn synthesize_reference(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        weights: Option<&[f64]>,
        extra_leakage_a: Option<&[f64]>,
    ) -> Result<CurrentTrace, PowerError> {
        if let Some(w) = weights {
            if w.len() != netlist.cell_count() {
                return Err(PowerError::LengthMismatch {
                    expected: netlist.cell_count(),
                    actual: w.len(),
                });
            }
        }
        if let Some(l) = extra_leakage_a {
            if l.len() != activity.cycle_count() {
                return Err(PowerError::LengthMismatch {
                    expected: activity.cycle_count(),
                    actual: l.len(),
                });
            }
        }
        let spc = self.clock.samples_per_cycle();
        let n_cycles = activity.cycle_count();
        let n_samples = n_cycles * spc;
        let fs = self.clock.sample_rate_hz();
        let dt = 1.0 / fs;
        let tau = self.library.gate_delay_s();
        let period = self.clock.period_s();
        let weight_of = |cell: emtrust_netlist::graph::CellId| -> f64 {
            weights.map_or(1.0, |w| w[cell.index()])
        };
        let leakage_a: f64 = netlist
            .cells()
            .map(|(id, c)| weight_of(id) * self.library.electrical(c.kind()).leakage_na * 1e-9)
            .sum();
        let mut output = vec![leakage_a; n_samples];
        let clock_charge_weighted: f64 = netlist
            .cells()
            .filter(|(_, c)| c.kind() == CellKind::Dff)
            .map(|(id, _)| {
                let q = self.library.charge_per_transition_c(CellKind::Dff) * CLOCK_LOAD_FRACTION;
                weight_of(id) * q
            })
            .sum();
        let mean_weight = weights.map_or(1.0, |w| {
            if w.is_empty() {
                1.0
            } else {
                w.iter().sum::<f64>() / w.len() as f64
            }
        });

        let render = |clo: usize, chi: usize, buf: &mut Vec<f64>| {
            for k in clo..chi {
                let cycle = &activity.cycles()[k];
                let cycle_t0 = (k - clo) as f64 * period;
                deposit(buf, dt, cycle_t0 + tau * 0.5, clock_charge_weighted);
                for event in cycle.events() {
                    let kind = netlist.cell(event.cell).kind();
                    let q0 = self.library.charge_per_transition_c(kind);
                    let q = if event.rising {
                        q0
                    } else {
                        q0 * FALL_CHARGE_FRACTION
                    };
                    let t = cycle_t0 + (event.level as f64 + 0.5) * tau;
                    deposit(buf, dt, t, q * weight_of(event.cell));
                }
                if let Some(extra) = extra_leakage_a {
                    let add = extra[k] * mean_weight;
                    if add != 0.0 {
                        let lo = (k - clo) * spc;
                        let hi = (lo + spc).min(buf.len());
                        for v in buf[lo..hi].iter_mut() {
                            *v += add;
                        }
                    }
                }
            }
        };

        let n_chunks = n_cycles.div_ceil(CYCLE_CHUNK);
        if n_chunks <= 1 {
            render(0, n_cycles, &mut output);
            return Ok(CurrentTrace::new(output, fs));
        }
        for c in 0..n_chunks {
            let clo = c * CYCLE_CHUNK;
            let chi = (clo + CYCLE_CHUNK).min(n_cycles);
            let max_off = (clo..chi)
                .flat_map(|k| activity.cycles()[k].events())
                .map(|e| (e.level as f64 + 0.5) * tau)
                .fold(tau * 0.5, f64::max);
            let last_pos = ((chi - clo - 1) as f64 * period + max_off) / dt;
            let len = ((chi - clo) * spc).max(last_pos.floor() as usize + 2);
            let mut buf = vec![0.0; len];
            render(clo, chi, &mut buf);
            let offset = clo * spc;
            for (i, v) in buf.iter().enumerate() {
                if offset + i >= n_samples {
                    break;
                }
                output[offset + i] += v;
            }
        }
        Ok(CurrentTrace::new(output, fs))
    }

    /// The shared renderer behind [`Self::synthesize_with`] and
    /// [`Self::synthesize_multi`]: one walk over cycles and events, one
    /// output buffer per weight set, deposits applied per set in set
    /// order so each output reproduces the single-set numerics exactly.
    fn synthesize_multi_impl(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        weight_sets: &[Option<&[f64]>],
        extra_leakage_a: Option<&[f64]>,
        workers: usize,
    ) -> Result<Vec<CurrentTrace>, PowerError> {
        for w in weight_sets.iter().flatten() {
            if w.len() != netlist.cell_count() {
                return Err(PowerError::LengthMismatch {
                    expected: netlist.cell_count(),
                    actual: w.len(),
                });
            }
        }
        if let Some(l) = extra_leakage_a {
            if l.len() != activity.cycle_count() {
                return Err(PowerError::LengthMismatch {
                    expected: activity.cycle_count(),
                    actual: l.len(),
                });
            }
        }

        let n_sets = weight_sets.len();
        let spc = self.clock.samples_per_cycle();
        let n_cycles = activity.cycle_count();
        let n_samples = n_cycles * spc;
        let fs = self.clock.sample_rate_hz();
        let dt = 1.0 / fs;
        let tau = self.library.gate_delay_s();
        let period = self.clock.period_s();

        let weight_of = |set: usize, cell: emtrust_netlist::graph::CellId| -> f64 {
            weight_sets[set].map_or(1.0, |w| w[cell.index()])
        };

        // Static leakage floor, weighted per set like everything else.
        let leakage_a: Vec<f64> = (0..n_sets)
            .map(|s| {
                netlist
                    .cells()
                    .map(|(id, c)| {
                        weight_of(s, id) * self.library.electrical(c.kind()).leakage_na * 1e-9
                    })
                    .sum()
            })
            .collect();
        let mut outputs: Vec<Vec<f64>> = leakage_a
            .iter()
            .map(|&leak| vec![leak; n_samples])
            .collect();

        // Clock tree: every flop's clock load switches at every edge.
        let flops: Vec<(emtrust_netlist::graph::CellId, f64)> = netlist
            .cells()
            .filter(|(_, c)| c.kind() == CellKind::Dff)
            .map(|(id, _)| {
                let q = self.library.charge_per_transition_c(CellKind::Dff) * CLOCK_LOAD_FRACTION;
                (id, q)
            })
            .collect();
        let clock_charge_weighted: Vec<f64> = (0..n_sets)
            .map(|s| flops.iter().map(|&(id, q)| weight_of(s, id) * q).sum())
            .collect();

        let mean_weight: Vec<f64> = weight_sets
            .iter()
            .map(|weights| {
                if let Some(w) = weights {
                    if w.is_empty() {
                        1.0
                    } else {
                        w.iter().sum::<f64>() / w.len() as f64
                    }
                } else {
                    1.0
                }
            })
            .collect();

        // Per-set deposit-amplitude tables, rise/fall interleaved per
        // cell: `tab[2c]` is the rising amplitude of cell `c`, `tab[2c+1]`
        // the falling one. Each entry is `(q · w) / dt` computed in the
        // exact multiply/divide order of the per-event path it replaces,
        // so every deposited sample keeps its bits — but the event loop
        // no longer touches the netlist, the library, or a divider.
        let n_cells = netlist.cell_count();
        let amp_tables: Vec<Vec<f64>> = (0..n_sets)
            .map(|s| {
                let mut tab = vec![0.0; n_cells * 2];
                for (id, c) in netlist.cells() {
                    let q0 = self.library.charge_per_transition_c(c.kind());
                    let w = weight_of(s, id);
                    tab[id.index() * 2] = (q0 * w) / dt;
                    tab[id.index() * 2 + 1] = ((q0 * FALL_CHARGE_FRACTION) * w) / dt;
                }
                tab
            })
            .collect();
        let clock_amp: Vec<f64> = clock_charge_weighted.iter().map(|&q| q / dt).collect();

        // Renders cycles `clo..chi` into one buffer per set, with deposit
        // times taken relative to the chunk start (`bufs[s][0]` is sample
        // `clo * spc`). Events are walked once; the sample position is
        // computed once per event and the precomputed amplitude is
        // deposited into every set's buffer in set order.
        let render = |clo: usize, chi: usize, bufs: &mut [Vec<f64>]| {
            for k in clo..chi {
                let cycle = &activity.cycles()[k];
                let cycle_t0 = (k - clo) as f64 * period;
                // Clock edge at the start of the cycle.
                let clock_pos = (cycle_t0 + tau * 0.5) / dt;
                for (buf, &amp) in bufs.iter_mut().zip(&clock_amp) {
                    deposit_amp(buf, clock_pos, amp);
                }
                // Data toggles staggered by level.
                for event in cycle.events() {
                    let t = cycle_t0 + (event.level as f64 + 0.5) * tau;
                    let pos = t / dt;
                    let slot = event.cell.index() * 2 + usize::from(!event.rising);
                    for (buf, tab) in bufs.iter_mut().zip(&amp_tables) {
                        deposit_amp(buf, pos, tab[slot]);
                    }
                }
                // Per-cycle extra leakage (T2's channel).
                if let Some(extra) = extra_leakage_a {
                    for (s, buf) in bufs.iter_mut().enumerate() {
                        let add = extra[k] * mean_weight[s];
                        if add != 0.0 {
                            let lo = (k - clo) * spc;
                            let hi = (lo + spc).min(buf.len());
                            for v in buf[lo..hi].iter_mut() {
                                *v += add;
                            }
                        }
                    }
                }
            }
        };

        let n_chunks = n_cycles.div_ceil(CYCLE_CHUNK);
        if n_chunks <= 1 {
            render(0, n_cycles, &mut outputs);
            return Ok(outputs
                .into_iter()
                .map(|samples| CurrentTrace::new(samples, fs))
                .collect());
        }

        // One pool item per cycle chunk; the layout ignores `workers`.
        let locals = emtrust_dsp::parallel::chunked_map(n_chunks, 1, workers, |chunks| {
            chunks
                .map(|c| {
                    let clo = c * CYCLE_CHUNK;
                    let chi = (clo + CYCLE_CHUNK).min(n_cycles);
                    // Tail room for deposits spilling past the chunk end:
                    // the latest deposit of the chunk's last cycle.
                    let max_off = (clo..chi)
                        .flat_map(|k| activity.cycles()[k].events())
                        .map(|e| (e.level as f64 + 0.5) * tau)
                        .fold(tau * 0.5, f64::max);
                    let last_pos = ((chi - clo - 1) as f64 * period + max_off) / dt;
                    let len = ((chi - clo) * spc).max(last_pos.floor() as usize + 2);
                    let mut bufs = vec![vec![0.0; len]; n_sets];
                    render(clo, chi, &mut bufs);
                    bufs
                })
                .collect::<Vec<_>>()
        });
        for (c, local) in locals.iter().enumerate() {
            let offset = c * CYCLE_CHUNK * spc;
            for (s, buf) in local.iter().enumerate() {
                for (i, v) in buf.iter().enumerate() {
                    if offset + i >= n_samples {
                        break;
                    }
                    outputs[s][offset + i] += v;
                }
            }
        }

        Ok(outputs
            .into_iter()
            .map(|samples| CurrentTrace::new(samples, fs))
            .collect())
    }
}

/// [`deposit`] with the division already folded into a precomputed
/// amplitude (`amp = charge / dt`) and the sample position precomputed
/// (`pos = t / dt`): the fast-path form fed by the amplitude tables.
/// `amp == 0` exactly when the corresponding charge is zero, so the
/// zero-skip matches the charge-based deposit.
#[inline]
fn deposit_amp(samples: &mut [f64], pos: f64, amp: f64) {
    if samples.is_empty() || amp == 0.0 {
        return;
    }
    let idx = pos.floor() as usize;
    let frac = pos - pos.floor();
    if idx < samples.len() {
        samples[idx] += amp * (1.0 - frac);
    }
    if idx + 1 < samples.len() {
        samples[idx + 1] += amp * frac;
    }
}

/// Deposits a charge impulse at time `t` as current, split linearly over
/// the two nearest samples (charge-conserving).
fn deposit(samples: &mut [f64], dt: f64, t: f64, charge_c: f64) {
    if samples.is_empty() || charge_c == 0.0 {
        return;
    }
    let pos = t / dt;
    let idx = pos.floor() as usize;
    let frac = pos - pos.floor();
    let amp = charge_c / dt;
    if idx < samples.len() {
        samples[idx] += amp * (1.0 - frac);
    }
    if idx + 1 < samples.len() {
        samples[idx + 1] += amp * frac;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_netlist::graph::Netlist;
    use emtrust_sim::engine::Simulator;

    fn toggle_netlist() -> Netlist {
        let mut n = Netlist::new("toggle");
        let (q, d) = n.dff_deferred();
        let nq = n.not(q);
        n.connect_dff_d(d, nq);
        n.mark_output("q", q);
        n
    }

    fn record(n: &Netlist, cycles: usize) -> ActivityTrace {
        let mut sim = Simulator::new(n).unwrap();
        sim.settle();
        sim.start_recording();
        sim.run(cycles);
        sim.take_recording()
    }

    fn model() -> CurrentModel {
        CurrentModel::new(Library::generic_180nm(), ClockConfig::reference())
    }

    #[test]
    fn trace_length_matches_cycles_times_spc() {
        let n = toggle_netlist();
        let act = record(&n, 5);
        let t = model().synthesize(&n, &act, None, None).unwrap();
        assert_eq!(t.len(), 5 * 64);
        assert_eq!(t.sample_rate_hz(), 640e6);
    }

    #[test]
    fn charge_accounting_is_conserved() {
        let n = toggle_netlist();
        let act = record(&n, 4);
        let t = model().synthesize(&n, &act, None, None).unwrap();
        let lib = Library::generic_180nm();
        // Expected: per cycle, clock load + dff toggle + inverter toggle
        // (alternating rise/fall) + leakage.
        let q_dff = lib.charge_per_transition_c(CellKind::Dff);
        let q_inv = lib.charge_per_transition_c(CellKind::Inv);
        let clock = 4.0 * q_dff * CLOCK_LOAD_FRACTION;
        // 2 rising + 2 falling for each of dff and inv over 4 cycles.
        let data = 2.0 * (q_dff + q_inv) * (1.0 + FALL_CHARGE_FRACTION);
        let leak = (0.35e-9 + 0.05e-9) * t.duration_s();
        let expect = clock + data + leak;
        assert!(
            (t.total_charge_c() - expect).abs() < 0.05 * expect,
            "charge {} vs expected {}",
            t.total_charge_c(),
            expect
        );
    }

    #[test]
    fn more_activity_means_more_charge() {
        // A 4-flop toggle bank vs a single toggle flop.
        let mut big = Netlist::new("bank");
        for _ in 0..4 {
            let (q, d) = big.dff_deferred();
            let nq = big.not(q);
            big.connect_dff_d(d, nq);
            big.mark_output("q", q);
        }
        let small = toggle_netlist();
        let act_big = record(&big, 4);
        let act_small = record(&small, 4);
        let m = model();
        let tb = m.synthesize(&big, &act_big, None, None).unwrap();
        let ts = m.synthesize(&small, &act_small, None, None).unwrap();
        assert!(tb.total_charge_c() > 2.0 * ts.total_charge_c());
    }

    #[test]
    fn weights_scale_contributions() {
        let n = toggle_netlist();
        let act = record(&n, 4);
        let m = model();
        let unweighted = m.synthesize(&n, &act, None, None).unwrap();
        let w = vec![0.5; n.cell_count()];
        let weighted = m.synthesize(&n, &act, Some(&w), None).unwrap();
        assert!(
            (weighted.total_charge_c() - 0.5 * unweighted.total_charge_c()).abs()
                < 1e-6 * unweighted.total_charge_c()
        );
    }

    #[test]
    fn zero_weights_leave_only_nothing() {
        let n = toggle_netlist();
        let act = record(&n, 2);
        let w = vec![0.0; n.cell_count()];
        let t = model().synthesize(&n, &act, Some(&w), None).unwrap();
        assert!(t.samples().iter().all(|&x| x.abs() < 1e-18));
    }

    #[test]
    fn extra_leakage_raises_the_floor() {
        let n = toggle_netlist();
        let act = record(&n, 4);
        let m = model();
        let base = m.synthesize(&n, &act, None, None).unwrap();
        let extra = vec![1e-6; 4]; // 1 µA for every cycle
        let with = m.synthesize(&n, &act, None, Some(&extra)).unwrap();
        let delta = with.total_charge_c() - base.total_charge_c();
        let expect = 1e-6 * with.duration_s();
        assert!((delta - expect).abs() < 0.01 * expect);
    }

    #[test]
    fn wrong_vector_lengths_are_rejected() {
        let n = toggle_netlist();
        let act = record(&n, 2);
        let m = model();
        assert!(matches!(
            m.synthesize(&n, &act, Some(&[1.0]), None),
            Err(PowerError::LengthMismatch { .. })
        ));
        assert!(matches!(
            m.synthesize(&n, &act, None, Some(&[0.0])),
            Err(PowerError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn clock_pulse_lands_at_cycle_start() {
        let n = toggle_netlist();
        let act = record(&n, 1);
        let t = model().synthesize(&n, &act, None, None).unwrap();
        // The biggest sample should be among the first few of the cycle
        // (clock edge + level-0/1 toggles near the edge).
        let (max_idx, _) = t
            .samples()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(max_idx < 8, "peak at sample {max_idx}");
    }

    #[test]
    fn chunked_synthesis_is_bit_identical_for_any_worker_count() {
        // 200 cycles spans four CYCLE_CHUNK chunks.
        let n = toggle_netlist();
        let act = record(&n, 200);
        let m = model();
        let reference = m.synthesize_with(&n, &act, None, None, 1).unwrap();
        for workers in [2, 3, 8] {
            let par = m.synthesize_with(&n, &act, None, None, workers).unwrap();
            assert_eq!(par.len(), reference.len());
            for (a, b) in par.samples().iter().zip(reference.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn single_chunk_synthesis_matches_legacy_serial_numerics() {
        let n = toggle_netlist();
        let act = record(&n, 12);
        let m = model();
        let serial = m.synthesize(&n, &act, None, None).unwrap();
        let par = m.synthesize_with(&n, &act, None, None, 8).unwrap();
        for (a, b) in par.samples().iter().zip(serial.samples()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multi_synthesis_is_bit_identical_to_separate_calls() {
        let n = toggle_netlist();
        let act = record(&n, 200); // spans multiple CYCLE_CHUNK chunks
        let m = model();
        let w_half = vec![0.5; n.cell_count()];
        let w_ramp: Vec<f64> = (0..n.cell_count()).map(|i| 0.1 + i as f64).collect();
        let w_one = vec![1.0; n.cell_count()];
        let extra = vec![1e-6; 200];
        let sets: Vec<&[f64]> = vec![&w_half, &w_ramp, &w_one];
        for workers in [1, 4] {
            let multi = m
                .synthesize_multi(&n, &act, &sets, Some(&extra), workers)
                .unwrap();
            assert_eq!(multi.len(), 3);
            for (set, got) in sets.iter().zip(&multi) {
                let alone = m
                    .synthesize_with(&n, &act, Some(set), Some(&extra), workers)
                    .unwrap();
                assert_eq!(got.len(), alone.len());
                for (a, b) in got.samples().iter().zip(alone.samples()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn multi_synthesis_single_chunk_matches_too() {
        let n = toggle_netlist();
        let act = record(&n, 12);
        let m = model();
        let w = vec![0.25; n.cell_count()];
        let multi = m.synthesize_multi(&n, &act, &[&w], None, 1).unwrap();
        let alone = m.synthesize_with(&n, &act, Some(&w), None, 1).unwrap();
        for (a, b) in multi[0].samples().iter().zip(alone.samples()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multi_synthesis_rejects_bad_input() {
        let n = toggle_netlist();
        let act = record(&n, 2);
        let m = model();
        assert!(matches!(
            m.synthesize_multi(&n, &act, &[], None, 1),
            Err(PowerError::InvalidParameter { .. })
        ));
        let short = [1.0];
        assert!(matches!(
            m.synthesize_multi(&n, &act, &[&short], None, 1),
            Err(PowerError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn table_driven_synthesis_is_bit_identical_to_scalar_reference() {
        let n = toggle_netlist();
        let m = model();
        let w_ramp: Vec<f64> = (0..n.cell_count()).map(|i| 0.3 + 0.7 * i as f64).collect();
        // 12 cycles renders in one chunk, 200 spans four.
        for cycles in [12usize, 200] {
            let act = record(&n, cycles);
            let extra: Vec<f64> = (0..cycles).map(|k| 1e-7 * k as f64).collect();
            type Variant<'a> = (Option<&'a [f64]>, Option<&'a [f64]>);
            let variants: [Variant<'_>; 3] = [
                (None, None),
                (Some(&w_ramp), None),
                (Some(&w_ramp), Some(&extra)),
            ];
            for (weights, leak) in variants {
                let fast = m.synthesize_with(&n, &act, weights, leak, 1).unwrap();
                let reference = m.synthesize_reference(&n, &act, weights, leak).unwrap();
                assert_eq!(fast.len(), reference.len());
                for (a, b) in fast.samples().iter().zip(reference.samples()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "cycles={cycles}");
                }
            }
        }
    }

    #[test]
    fn reference_path_rejects_bad_input_like_the_fast_path() {
        let n = toggle_netlist();
        let act = record(&n, 2);
        let m = model();
        assert!(matches!(
            m.synthesize_reference(&n, &act, Some(&[1.0]), None),
            Err(PowerError::LengthMismatch { .. })
        ));
        assert!(matches!(
            m.synthesize_reference(&n, &act, None, Some(&[0.0])),
            Err(PowerError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn deposit_conserves_charge_between_samples() {
        let mut s = vec![0.0; 4];
        deposit(&mut s, 1.0, 1.25, 2.0);
        assert!((s[1] - 1.5).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
        assert!((s.iter().sum::<f64>() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deposit_at_the_edge_is_safe() {
        let mut s = vec![0.0; 2];
        deposit(&mut s, 1.0, 5.0, 1.0); // beyond the buffer
        assert!(s.iter().all(|&x| x == 0.0));
        deposit(&mut s, 1.0, 1.5, 1.0); // second half lands past the end
        assert!((s[1] - 0.5).abs() < 1e-12);
    }
}
