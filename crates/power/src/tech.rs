//! Clocking and sampling configuration.

use crate::PowerError;

/// Clock and acquisition parameters shared across the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockConfig {
    clock_hz: f64,
    samples_per_cycle: usize,
}

impl ClockConfig {
    /// The reproduction's reference configuration: 10 MHz core clock,
    /// 64 current samples per cycle (640 MS/s — oscilloscope class).
    pub fn reference() -> Self {
        Self {
            clock_hz: 10e6,
            samples_per_cycle: 64,
        }
    }

    /// Creates a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `clock_hz <= 0` or
    /// `samples_per_cycle < 2`.
    pub fn new(clock_hz: f64, samples_per_cycle: usize) -> Result<Self, PowerError> {
        if clock_hz <= 0.0 {
            return Err(PowerError::InvalidParameter {
                what: "clock frequency must be positive",
            });
        }
        if samples_per_cycle < 2 {
            return Err(PowerError::InvalidParameter {
                what: "need at least 2 samples per cycle",
            });
        }
        Ok(Self {
            clock_hz,
            samples_per_cycle,
        })
    }

    /// Core clock frequency in hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Current samples per clock cycle.
    pub fn samples_per_cycle(&self) -> usize {
        self.samples_per_cycle
    }

    /// Sample rate in samples per second.
    pub fn sample_rate_hz(&self) -> f64 {
        self.clock_hz * self.samples_per_cycle as f64
    }

    /// Clock period in seconds.
    pub fn period_s(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

impl Default for ClockConfig {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configuration() {
        let c = ClockConfig::reference();
        assert_eq!(c.clock_hz(), 10e6);
        assert_eq!(c.samples_per_cycle(), 64);
        assert_eq!(c.sample_rate_hz(), 640e6);
        assert!((c.period_s() - 100e-9).abs() < 1e-18);
        assert_eq!(ClockConfig::default(), c);
    }

    #[test]
    fn validation() {
        assert!(ClockConfig::new(0.0, 64).is_err());
        assert!(ClockConfig::new(-1.0, 64).is_err());
        assert!(ClockConfig::new(1e6, 1).is_err());
        assert!(ClockConfig::new(1e6, 2).is_ok());
    }
}
