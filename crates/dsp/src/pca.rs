//! Principal Component Analysis via a cyclic Jacobi eigensolver.
//!
//! The paper (§III-D) uses PCA to "reduce the dimensionality of original
//! data by replacing several correlated variables with a new set of
//! independent variables" before the Euclidean-distance comparison. EM
//! traces are long (thousands of samples) and highly correlated across
//! nearby samples, so the reduction both denoises and accelerates the
//! detector.
//!
//! The eigensolver is the classical cyclic Jacobi rotation method: exact for
//! symmetric matrices, dependency-free, and fast enough for the trace
//! dimensionalities used here (a covariance matrix of a few hundred after
//! time-binning).

use crate::matrix::Matrix;
use crate::DspError;

/// A fitted PCA model: the mean vector and the leading principal axes.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// One row per retained component (each row is a unit-norm axis).
    components: Matrix,
    /// Eigenvalues (variance along each retained axis), descending.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA model on `samples` (each an equal-length observation) and
    /// retains the `k` leading components.
    ///
    /// # Errors
    ///
    /// - [`DspError::EmptyInput`] if `samples` is empty,
    /// - [`DspError::LengthMismatch`] if the observations are ragged,
    /// - [`DspError::InvalidParameter`] if `k == 0` or `k` exceeds the
    ///   dimensionality,
    /// - [`DspError::NoConvergence`] if the eigensolver fails (pathological
    ///   input; does not occur for real covariance matrices).
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), emtrust_dsp::DspError> {
    /// use emtrust_dsp::pca::Pca;
    ///
    /// // Points spread along the diagonal of the plane: one dominant axis.
    /// let samples: Vec<Vec<f64>> = (0..32)
    ///     .map(|i| vec![i as f64, i as f64 + 0.01 * (i % 3) as f64])
    ///     .collect();
    /// let pca = Pca::fit(&samples, 1)?;
    /// let z = pca.project(&samples[5])?;
    /// assert_eq!(z.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(samples: &[Vec<f64>], k: usize) -> Result<Self, DspError> {
        let _span = emtrust_telemetry::span("pca_fit");
        let first = samples.first().ok_or(DspError::EmptyInput)?;
        let dim = first.len();
        if dim == 0 {
            return Err(DspError::EmptyInput);
        }
        if k == 0 || k > dim {
            return Err(DspError::InvalidParameter {
                what: "component count k must satisfy 1 <= k <= dim",
            });
        }
        for s in samples {
            if s.len() != dim {
                return Err(DspError::LengthMismatch {
                    expected: dim,
                    actual: s.len(),
                });
            }
        }

        // Mean vector.
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in samples {
            for (m, x) in mean.iter_mut().zip(s) {
                *m += x;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }

        let cov = covariance(samples, &mean, n);

        let (eigenvalues, eigenvectors) = jacobi_eigen(&cov, 128)?;

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..dim).collect();
        order.sort_by(|&a, &b| {
            eigenvalues[b]
                .partial_cmp(&eigenvalues[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut components = Matrix::zeros(k, dim);
        let mut explained = Vec::with_capacity(k);
        for (row, &idx) in order.iter().take(k).enumerate() {
            explained.push(eigenvalues[idx].max(0.0));
            for c in 0..dim {
                components.set(row, c, eigenvectors.get(c, idx));
            }
        }

        Ok(Self {
            mean,
            components,
            explained_variance: explained,
        })
    }

    /// Projects a single observation onto the retained components.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x` has the wrong
    /// dimensionality.
    pub fn project(&self, x: &[f64]) -> Result<Vec<f64>, DspError> {
        emtrust_telemetry::counter("pca.projections", 1);
        if x.len() != self.mean.len() {
            return Err(DspError::LengthMismatch {
                expected: self.mean.len(),
                actual: x.len(),
            });
        }
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        self.components.mul_vec(&centered)
    }

    /// Projects a batch of observations.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] on any dimensionality mismatch.
    pub fn project_all(&self, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DspError> {
        xs.iter().map(|x| self.project(x)).collect()
    }

    /// Variance captured along each retained axis, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total retained variance per axis; sums to 1 when any
    /// variance exists.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.explained_variance.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance.iter().map(|v| v / total).collect()
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Dimensionality of the input space.
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The retained principal axes, one per row.
    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

/// Population covariance of `samples` around `mean` (`n` = sample count;
/// the detector only compares relative variances so the 1/n vs 1/(n-1)
/// choice is moot).
///
/// The accumulation runs over one flat row-major buffer with the sample
/// centered once into a scratch vector, so the upper-triangle update is
/// a contiguous `row[j] += di * centered[j]` sweep — the same additions
/// in the same order as the per-element `Matrix::get`/`set` loop it
/// replaced (bit-identical), without the per-element bounds asserts or
/// the `O(dim²)` re-subtraction of the mean.
fn covariance(samples: &[Vec<f64>], mean: &[f64], n: f64) -> Matrix {
    let dim = mean.len();
    let mut acc = vec![0.0f64; dim * dim];
    let mut centered = vec![0.0f64; dim];
    for s in samples {
        for (c, (x, m)) in centered.iter_mut().zip(s.iter().zip(mean)) {
            *c = x - m;
        }
        for i in 0..dim {
            let di = centered[i];
            if di == 0.0 {
                continue;
            }
            let row = &mut acc[i * dim + i..(i + 1) * dim];
            for (r, &cj) in row.iter_mut().zip(&centered[i..]) {
                *r += di * cj;
            }
        }
    }
    let mut cov = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in i..dim {
            let v = acc[i * dim + j] / n;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    cov
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` where column `i` of the eigenvector
/// matrix corresponds to `eigenvalues[i]` (unsorted).
///
/// # Errors
///
/// - [`DspError::InvalidParameter`] if the matrix is not square-symmetric,
/// - [`DspError::NoConvergence`] if the off-diagonal mass fails to vanish
///   within `max_sweeps` sweeps.
pub fn jacobi_eigen(m: &Matrix, max_sweeps: usize) -> Result<(Vec<f64>, Matrix), DspError> {
    let (rows, cols) = m.shape();
    if rows != cols || !m.is_symmetric(1e-9) {
        return Err(DspError::InvalidParameter {
            what: "jacobi eigensolver requires a symmetric square matrix",
        });
    }
    let n = rows;
    let mut a = m.clone();
    let mut v = Matrix::identity(n);
    if n <= 1 {
        let eigenvalues = (0..n).map(|i| a.get(i, i)).collect();
        return Ok((eigenvalues, v));
    }

    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a.get(i, j) * a.get(i, j);
            }
        }
        let scale: f64 = (0..n).map(|i| a.get(i, i).abs()).sum::<f64>().max(1e-300);
        if off.sqrt() <= 1e-12 * scale {
            let eigenvalues = (0..n).map(|i| a.get(i, i)).collect();
            return Ok((eigenvalues, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(DspError::NoConvergence {
        algorithm: "jacobi eigensolver",
        iterations: max_sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonal_matrix_is_trivial() {
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let (vals, _) = jacobi_eigen(&m, 64).unwrap();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-10);
        assert!((sorted[1] - 2.0).abs() < 1e-10);
        assert!((sorted[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let (vals, vecs) = jacobi_eigen(&m, 64).unwrap();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-10);
        assert!((sorted[1] - 3.0).abs() < 1e-10);
        // Check A·v = λ·v for each eigenpair.
        for (i, &val) in vals.iter().enumerate() {
            let v: Vec<f64> = (0..2).map(|r| vecs.get(r, i)).collect();
            let av = m.mul_vec(&v).unwrap();
            for r in 0..2 {
                assert!((av[r] - val * v[r]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(jacobi_eigen(&m, 64).is_err());
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.25],
            vec![0.5, 0.25, 2.0],
        ])
        .unwrap();
        let (_, vecs) = jacobi_eigen(&m, 128).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|r| vecs.get(r, i) * vecs.get(r, j)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "columns {i},{j}: {dot}");
            }
        }
    }

    #[test]
    fn pca_finds_the_dominant_direction() {
        // Points on the line y = 2x plus tiny orthogonal noise.
        let samples: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                let t = i as f64 / 8.0 - 4.0;
                let noise = 1e-3 * ((i * 31 % 7) as f64 - 3.0);
                vec![t - 2.0 * noise, 2.0 * t + noise]
            })
            .collect();
        let pca = Pca::fit(&samples, 2).unwrap();
        let ratio = pca.explained_variance_ratio();
        assert!(
            ratio[0] > 0.999,
            "dominant axis should capture nearly all variance"
        );
        // The dominant axis should be parallel to (1, 2)/√5.
        let axis = pca.components().row(0);
        let expected = [1.0 / 5.0f64.sqrt(), 2.0 / 5.0f64.sqrt()];
        let dot = (axis[0] * expected[0] + axis[1] * expected[1]).abs();
        assert!((dot - 1.0).abs() < 1e-3, "axis {axis:?}");
    }

    #[test]
    fn pca_projection_preserves_cluster_separation() {
        let cluster_a: Vec<Vec<f64>> = (0..16).map(|i| vec![0.0 + 0.01 * i as f64, 0.0]).collect();
        let cluster_b: Vec<Vec<f64>> = (0..16).map(|i| vec![10.0 + 0.01 * i as f64, 0.0]).collect();
        let all: Vec<Vec<f64>> = cluster_a.iter().chain(&cluster_b).cloned().collect();
        let pca = Pca::fit(&all, 1).unwrap();
        let za = pca.project(&cluster_a[0]).unwrap()[0];
        let zb = pca.project(&cluster_b[0]).unwrap()[0];
        assert!((za - zb).abs() > 5.0);
    }

    #[test]
    fn pca_rejects_bad_k() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(Pca::fit(&samples, 0).is_err());
        assert!(Pca::fit(&samples, 3).is_err());
    }

    #[test]
    fn pca_rejects_empty_and_ragged() {
        assert!(Pca::fit(&[], 1).is_err());
        assert!(Pca::fit(&[vec![1.0], vec![1.0, 2.0]], 1).is_err());
    }

    #[test]
    fn project_checks_dimension() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let pca = Pca::fit(&samples, 1).unwrap();
        assert!(pca.project(&[1.0]).is_err());
        assert_eq!(pca.input_dim(), 2);
        assert_eq!(pca.n_components(), 1);
    }

    /// The pre-optimization covariance loop: per-element `get`/`set`
    /// with the mean re-subtracted for every `(i, j)` pair. The slice
    /// version must reproduce it bit for bit.
    fn covariance_reference(samples: &[Vec<f64>], mean: &[f64], n: f64) -> Matrix {
        let dim = mean.len();
        let mut cov = Matrix::zeros(dim, dim);
        for s in samples {
            for i in 0..dim {
                let di = s[i] - mean[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..dim {
                    let v = cov.get(i, j) + di * (s[j] - mean[j]);
                    cov.set(i, j, v);
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                let v = cov.get(i, j) / n;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        cov
    }

    #[test]
    fn covariance_slices_are_bit_identical_to_reference_loop() {
        let dim = 17;
        let samples: Vec<Vec<f64>> = (0..23)
            .map(|s| {
                (0..dim)
                    .map(|d| ((s * 31 + d * 7) as f64 * 0.37).sin() * (1.0 + d as f64))
                    .collect()
            })
            .collect();
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in &samples {
            for (m, x) in mean.iter_mut().zip(s) {
                *m += x;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let fast = covariance(&samples, &mean, n);
        let reference = covariance_reference(&samples, &mean, n);
        for i in 0..dim {
            for j in 0..dim {
                assert_eq!(
                    fast.get(i, j).to_bits(),
                    reference.get(i, j).to_bits(),
                    "cov[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn constant_data_has_zero_variance() {
        let samples = vec![vec![5.0, 5.0]; 8];
        let pca = Pca::fit(&samples, 2).unwrap();
        assert!(pca.explained_variance().iter().all(|&v| v.abs() < 1e-12));
        assert!(pca.explained_variance_ratio().iter().all(|&v| v == 0.0));
    }
}
