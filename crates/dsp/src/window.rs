//! Analysis windows for spectral estimation.
//!
//! The spectral detector (paper §III-E) compares EM spectra between a golden
//! reference and the running chip; windowing controls the leakage between
//! bins so that a weak Trojan line next to the strong clock line remains
//! visible.

/// The window function applied before a spectral transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Window {
    /// No tapering (all ones).
    #[default]
    Rectangular,
    /// Hann window, `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming window, `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl Window {
    /// Returns the window coefficients for length `n`.
    ///
    /// For `n == 0` the result is empty; for `n == 1` it is `[1.0]` for all
    /// window kinds (the limit of each formula).
    ///
    /// # Examples
    ///
    /// ```
    /// use emtrust_dsp::window::Window;
    ///
    /// let w = Window::Hann.coefficients(4);
    /// assert_eq!(w.len(), 4);
    /// assert!(w[0].abs() < 1e-12); // Hann tapers to zero at the edges
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Applies the window to `signal` in place.
    pub fn apply(self, signal: &mut [f64]) {
        if matches!(self, Window::Rectangular) {
            return;
        }
        let coeffs = self.coefficients(signal.len());
        for (s, w) in signal.iter_mut().zip(coeffs) {
            *s *= w;
        }
    }

    /// The coherent gain (mean coefficient), used to renormalize amplitudes.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let coeffs = self.coefficients(n);
        coeffs.iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&w| (w - 1.0).abs() < 1e-15));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!((c[i] - c[c.len() - 1 - i]).abs() < 1e-12, "{w:?} at {i}");
            }
        }
    }

    #[test]
    fn windows_peak_at_one_in_the_middle() {
        for w in [Window::Hann, Window::Hamming] {
            let c = w.coefficients(65);
            assert!((c[32] - 1.0).abs() < 1e-12, "{w:?}");
        }
    }

    #[test]
    fn hann_tapers_to_zero() {
        let c = Window::Hann.coefficients(64);
        assert!(c[0].abs() < 1e-12);
        assert!(c[63].abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert!(w.coefficients(0).is_empty());
            assert_eq!(w.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn apply_scales_signal() {
        let mut s = vec![2.0; 8];
        Window::Hann.apply(&mut s);
        assert!(s[0].abs() < 1e-12);
        assert!(s[3] > 1.5);
    }

    #[test]
    fn coherent_gain_of_rectangular_is_one() {
        assert!((Window::Rectangular.coherent_gain(128) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn coherent_gain_of_hann_is_about_half() {
        let g = Window::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3, "{g}");
    }
}
