//! Euclidean-distance metrics and the paper's Eq. 1 detection threshold.
//!
//! The data-analysis module identifies a hardware Trojan when the Euclidean
//! distance between fresh measurements and the golden (Trojan-free)
//! fingerprint exceeds
//!
//! ```text
//! EDth = argmax_{Di, Dj ∈ Dg} ‖Di − Dj‖₂          (paper Eq. 1)
//! ```
//!
//! i.e. the largest distance observed *within* the golden set — a margin for
//! residual noise that survives denoising and PCA.

use crate::DspError;

/// Independent accumulator lanes of the squared-distance kernel.
///
/// Four lanes break the loop-carried dependency of a sequential f64 sum
/// (which the compiler may never reassociate), so the inner loop
/// autovectorizes; the lane combine order is fixed —
/// `((l0 + l2) + (l1 + l3)) + tail` — making the result a deterministic
/// function of the inputs alone.
pub const DISTANCE_LANES: usize = 4;

/// The lane-structured squared-difference kernel shared by every distance
/// function: 4 independent accumulators over `chunks_exact` blocks, a
/// sequential tail, and the fixed lane combine.
#[inline]
fn sum_sq_diff(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; DISTANCE_LANES];
    let mut ca = a.chunks_exact(DISTANCE_LANES);
    let mut cb = b.chunks_exact(DISTANCE_LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..DISTANCE_LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[2]) + (acc[1] + acc[3])) + tail
}

/// Euclidean (L2) distance between two equal-length vectors.
///
/// Computed with the lane-structured kernel ([`DISTANCE_LANES`]
/// accumulators, fixed combine order); see [`euclidean_reference`] for
/// the sequential scalar ordering it replaced.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if the lengths differ.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), emtrust_dsp::DspError> {
/// use emtrust_dsp::distance::euclidean;
///
/// let d = euclidean(&[0.0, 0.0], &[3.0, 4.0])?;
/// assert!((d - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    Ok(euclidean_sqr(a, b)?.sqrt())
}

/// Squared Euclidean distance (no square root; cheaper for comparisons).
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if the lengths differ.
pub fn euclidean_sqr(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.len() != b.len() {
        return Err(DspError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(sum_sq_diff(a, b))
}

/// The sequential scalar Euclidean distance — one accumulator, strictly
/// left-to-right summation. Retained as the reference path for the lane
/// kernel: equivalence tests bound the reassociation error against it,
/// and the perf-regression bench (`exp_throughput`) times it as the
/// before side of the hot-path ratio.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if the lengths differ.
pub fn euclidean_reference(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.len() != b.len() {
        return Err(DspError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt())
}

/// Flattens a uniform set of vectors into one contiguous row-major
/// buffer, validating dimensions up front. The pair scans walk this SoA
/// layout instead of chasing one heap pointer per vector.
fn flatten_set(set: &[Vec<f64>]) -> Result<(Vec<f64>, usize), DspError> {
    let dim = set.first().map_or(0, Vec::len);
    let mut flat = Vec::with_capacity(set.len() * dim);
    for v in set {
        if v.len() != dim {
            return Err(DspError::LengthMismatch {
                expected: dim,
                actual: v.len(),
            });
        }
        flat.extend_from_slice(v);
    }
    Ok((flat, dim))
}

/// All pairwise Euclidean distances within a set of vectors.
///
/// Returns the `n·(n−1)/2` distances of the upper triangle in row-major
/// order. This is the raw material for the histogram panels of paper Fig. 6.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if any vector disagrees in length
/// with the first.
pub fn pairwise_distances(set: &[Vec<f64>]) -> Result<Vec<f64>, DspError> {
    pairwise_distances_with(set, 1, usize::MAX)
}

/// [`pairwise_distances`] with the row space fanned across `workers`
/// threads in chunks of `row_chunk` rows. Row-major output order — and
/// hence every bit of the result — is independent of the worker count.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if any vector disagrees in length
/// with the first.
pub fn pairwise_distances_with(
    set: &[Vec<f64>],
    workers: usize,
    row_chunk: usize,
) -> Result<Vec<f64>, DspError> {
    let _span = emtrust_telemetry::span("pairwise_scan");
    let n = set.len();
    let (flat, dim) = flatten_set(set)?;
    let row = |i: usize| &flat[i * dim..(i + 1) * dim];
    let rows = crate::parallel::chunked_map(n, row_chunk.min(n.max(1)), workers, |range| {
        let mut out = Vec::new();
        for i in range {
            for j in (i + 1)..n {
                out.push(sum_sq_diff(row(i), row(j)).sqrt());
            }
        }
        vec![out]
    });
    Ok(rows.into_iter().flatten().collect())
}

/// All cross distances between two sets (`|a|·|b|` values).
///
/// Used for golden-vs-suspect distributions (blue stripes in Fig. 6).
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] on inconsistent vector lengths.
pub fn cross_distances(a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<Vec<f64>, DspError> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push(euclidean(x, y)?);
        }
    }
    Ok(out)
}

/// The paper's Eq. 1 threshold: the maximum pairwise distance within the
/// golden (Trojan-free) set.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if fewer than two golden vectors
/// are supplied (no pair exists), or [`DspError::LengthMismatch`] on
/// inconsistent vector lengths.
pub fn eq1_threshold(golden: &[Vec<f64>]) -> Result<f64, DspError> {
    eq1_threshold_with(golden, 1, usize::MAX)
}

/// [`eq1_threshold`] with the `O(n²)` pair scan fanned across `workers`
/// threads in chunks of `row_chunk` rows. `f64::max` is associative and
/// commutative, so the threshold is bit-identical for every worker count.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if fewer than two golden vectors
/// are supplied (no pair exists), or [`DspError::LengthMismatch`] on
/// inconsistent vector lengths.
pub fn eq1_threshold_with(
    golden: &[Vec<f64>],
    workers: usize,
    row_chunk: usize,
) -> Result<f64, DspError> {
    let _span = emtrust_telemetry::span("eq1_scan");
    let n = golden.len();
    if n < 2 {
        return Err(DspError::InvalidParameter {
            what: "eq1 threshold needs at least two golden vectors",
        });
    }
    let (flat, dim) = flatten_set(golden)?;
    let row = |i: usize| &flat[i * dim..(i + 1) * dim];
    let best = crate::parallel::chunked_max(n, row_chunk.min(n), workers, 0.0, |range| {
        let mut best = 0.0f64;
        for i in range {
            for j in (i + 1)..n {
                best = best.max(sum_sq_diff(row(i), row(j)));
            }
        }
        best
    });
    Ok(best.sqrt())
}

/// [`eq1_threshold`] over the sequential scalar kernel
/// ([`euclidean_reference`]) and the unflattened vector-of-vectors
/// layout — the pre-optimization scan retained for equivalence tests and
/// as the before side of the `exp_throughput` hot-path ratio.
///
/// # Errors
///
/// Same as [`eq1_threshold`].
pub fn eq1_threshold_reference(golden: &[Vec<f64>]) -> Result<f64, DspError> {
    let n = golden.len();
    if n < 2 {
        return Err(DspError::InvalidParameter {
            what: "eq1 threshold needs at least two golden vectors",
        });
    }
    let mut best = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            best = best.max(euclidean_reference(&golden[i], &golden[j])?);
        }
    }
    Ok(best)
}

/// Distance of `probe` to the centroid (mean vector) of `reference`.
///
/// The paper reports a single scalar distance between the reference design
/// and each Trojan-activated design (§IV-C); comparing centroids is the
/// standard fingerprinting reading of that scalar.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `reference` is empty and
/// [`DspError::LengthMismatch`] on inconsistent lengths.
pub fn distance_to_centroid(probe: &[f64], reference: &[Vec<f64>]) -> Result<f64, DspError> {
    euclidean(probe, &centroid(reference)?)
}

/// The component-wise mean of a set of equal-length vectors.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `set` is empty and
/// [`DspError::LengthMismatch`] on inconsistent lengths.
pub fn centroid(set: &[Vec<f64>]) -> Result<Vec<f64>, DspError> {
    let first = set.first().ok_or(DspError::EmptyInput)?;
    let dim = first.len();
    let mut acc = vec![0.0; dim];
    for v in set {
        if v.len() != dim {
            return Err(DspError::LengthMismatch {
                expected: dim,
                actual: v.len(),
            });
        }
        for (a, x) in acc.iter_mut().zip(v) {
            *a += x;
        }
    }
    let n = set.len() as f64;
    for a in acc.iter_mut() {
        *a /= n;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn euclidean_345() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_rejects_mismatch() {
        assert!(matches!(
            euclidean(&[1.0], &[1.0, 2.0]),
            Err(DspError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn pairwise_count_is_n_choose_2() {
        let set: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        assert_eq!(pairwise_distances(&set).unwrap().len(), 15);
    }

    #[test]
    fn cross_count_is_product() {
        let a: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64]).collect();
        let b: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        assert_eq!(cross_distances(&a, &b).unwrap().len(), 12);
    }

    #[test]
    fn eq1_threshold_is_max_intra_distance() {
        let golden = vec![vec![0.0], vec![1.0], vec![4.0]];
        assert!((eq1_threshold(&golden).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_threshold_needs_two_vectors() {
        assert!(eq1_threshold(&[vec![1.0]]).is_err());
        assert!(eq1_threshold(&[]).is_err());
    }

    #[test]
    fn centroid_of_symmetric_points_is_origin() {
        let set = vec![vec![1.0, -2.0], vec![-1.0, 2.0]];
        let c = centroid(&set).unwrap();
        assert!(c.iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn centroid_rejects_ragged_input() {
        let set = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(centroid(&set).is_err());
    }

    #[test]
    fn distance_to_centroid_of_self_cluster_is_small() {
        let reference = vec![vec![1.0, 1.0], vec![1.2, 0.8], vec![0.8, 1.2]];
        let d = distance_to_centroid(&[1.0, 1.0], &reference).unwrap();
        assert!(d < 1e-12);
    }

    /// A scalar mirror of the lane kernel: the same four accumulator
    /// lanes computed as four strided scalar passes, combined in the same
    /// fixed order. Any structural drift in `sum_sq_diff` shows up as a
    /// bit difference here.
    fn sum_sq_diff_scalar_mirror(a: &[f64], b: &[f64]) -> f64 {
        let blocks = a.len() / DISTANCE_LANES;
        let mut acc = [0.0f64; DISTANCE_LANES];
        for (l, lane) in acc.iter_mut().enumerate() {
            for k in 0..blocks {
                let i = k * DISTANCE_LANES + l;
                let d = a[i] - b[i];
                *lane += d * d;
            }
        }
        let mut tail = 0.0;
        for i in blocks * DISTANCE_LANES..a.len() {
            let d = a[i] - b[i];
            tail += d * d;
        }
        ((acc[0] + acc[2]) + (acc[1] + acc[3])) + tail
    }

    proptest! {
        #[test]
        fn lane_kernel_is_bit_identical_to_scalar_mirror(
            a in proptest::collection::vec(-100.0f64..100.0, 1..=67),
            offs in proptest::collection::vec(-1.0f64..1.0, 67..=67),
        ) {
            let b: Vec<f64> = a.iter().zip(&offs).map(|(x, o)| x + o).collect();
            let fast = euclidean_sqr(&a, &b).unwrap();
            let mirror = sum_sq_diff_scalar_mirror(&a, &b);
            prop_assert_eq!(fast.to_bits(), mirror.to_bits());
        }

        #[test]
        fn lane_kernel_matches_sequential_reference(
            a in proptest::collection::vec(-100.0f64..100.0, 1..=67),
            offs in proptest::collection::vec(-1.0f64..1.0, 67..=67),
        ) {
            let b: Vec<f64> = a.iter().zip(&offs).map(|(x, o)| x + o).collect();
            let fast = euclidean(&a, &b).unwrap();
            let reference = euclidean_reference(&a, &b).unwrap();
            prop_assert!((fast - reference).abs() <= 1e-12 * (1.0 + reference));
        }

        #[test]
        fn flattened_eq1_scan_matches_reference_scan(
            set in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 6..=6), 2..10),
        ) {
            let opt = eq1_threshold(&set).unwrap();
            let reference = eq1_threshold_reference(&set).unwrap();
            prop_assert!((opt - reference).abs() <= 1e-12 * (1.0 + reference));
        }

        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-10.0f64..10.0, 8..=8),
            b in proptest::collection::vec(-10.0f64..10.0, 8..=8),
            c in proptest::collection::vec(-10.0f64..10.0, 8..=8),
        ) {
            let ab = euclidean(&a, &b).unwrap();
            let bc = euclidean(&b, &c).unwrap();
            let ac = euclidean(&a, &c).unwrap();
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn distance_is_symmetric_and_zero_on_self(
            a in proptest::collection::vec(-10.0f64..10.0, 4..32),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            prop_assert!((euclidean(&a, &b).unwrap() - euclidean(&b, &a).unwrap()).abs() < 1e-12);
            prop_assert!(euclidean(&a, &a).unwrap() < 1e-12);
        }

        #[test]
        fn eq1_threshold_bounds_all_intra_distances(
            set in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 4..=4), 2..12),
        ) {
            let th = eq1_threshold(&set).unwrap();
            for d in pairwise_distances(&set).unwrap() {
                prop_assert!(d <= th + 1e-12);
            }
        }
    }
}
