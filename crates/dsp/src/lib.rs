#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-dsp
//!
//! Signal-processing and statistics substrate for the `emtrust` runtime
//! trust-evaluation framework (DAC 2020, "Runtime Trust Evaluation and
//! Hardware Trojan Detection Using On-Chip EM Sensors").
//!
//! Everything here is implemented from scratch so the reproduction carries
//! no numerical black boxes:
//!
//! - [`fft`] — iterative radix-2 FFT over an internal [`fft::Complex`] type,
//! - [`spectrum`] — one-sided magnitude spectra and Welch averaging,
//! - [`window`] — standard analysis windows,
//! - [`stats`] — RMS / SNR / normalization helpers (paper Eq. 2 and Eq. 3),
//! - [`distance`] — Euclidean metrics and the paper's Eq. 1 threshold,
//! - [`pca`] — principal component analysis via a Jacobi eigensolver,
//! - [`matrix`] — the small dense symmetric-matrix support PCA needs,
//! - [`histogram`] — fixed-bin histograms (paper Fig. 6 panels a–h),
//! - [`parallel`] — deterministic chunked execution on scoped threads,
//!   the substrate of every multi-core hot path in the workspace,
//! - [`sliding`] — an incremental sliding-window DFT (`O(window)` per
//!   update) for streaming spectra over continuous acquisitions.
//!
//! # Examples
//!
//! Compute the SNR of a noisy sine the way the paper does (RMS ratio in dB):
//!
//! ```
//! use emtrust_dsp::stats::{rms, snr_db};
//!
//! let signal: Vec<f64> = (0..1024)
//!     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 64.0).sin())
//!     .collect();
//! let noise = vec![0.01; 1024];
//! let snr = snr_db(rms(&signal), rms(&noise));
//! assert!((snr - 36.98).abs() < 0.1);
//! ```

pub mod distance;
pub mod fft;
pub mod histogram;
pub mod matrix;
pub mod parallel;
pub mod pca;
pub mod sliding;
pub mod spectrum;
pub mod stats;
pub mod window;

use std::error::Error;
use std::fmt;

/// Errors produced by the DSP substrate.
///
/// All public fallible functions in this crate return `Result<_, DspError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The input length is not a power of two where one is required.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
    /// The input was empty where at least one element is required.
    EmptyInput,
    /// Two inputs that must agree in length do not.
    LengthMismatch {
        /// Length of the first input.
        expected: usize,
        /// Length of the second input.
        actual: usize,
    },
    /// A numeric parameter was out of its documented range.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::NotPowerOfTwo { len } => {
                write!(f, "input length {len} is not a power of two")
            }
            DspError::EmptyInput => write!(f, "input is empty"),
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            DspError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty_and_lowercase() {
        let errors = [
            DspError::NotPowerOfTwo { len: 3 },
            DspError::EmptyInput,
            DspError::LengthMismatch {
                expected: 4,
                actual: 5,
            },
            DspError::InvalidParameter {
                what: "k must be > 0",
            },
            DspError::NoConvergence {
                algorithm: "jacobi",
                iterations: 100,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
