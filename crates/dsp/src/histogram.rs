//! Fixed-bin histograms — the presentation format of paper Fig. 6 (a)–(h),
//! where pairwise Euclidean-distance distributions of golden vs.
//! Trojan-activated traces are compared by the position of their peaks.

use crate::DspError;

/// A histogram over a fixed range with uniform bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or above `hi`.
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `bins == 0`, the bounds are
    /// not finite, or `lo >= hi`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), emtrust_dsp::DspError> {
    /// use emtrust_dsp::histogram::Histogram;
    ///
    /// let mut h = Histogram::new(0.0, 1.0, 10)?;
    /// h.extend([0.05, 0.15, 0.16].iter().copied());
    /// assert_eq!(h.counts()[0], 1);
    /// assert_eq!(h.counts()[1], 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, DspError> {
        if bins == 0 {
            return Err(DspError::InvalidParameter {
                what: "histogram needs at least one bin",
            });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(DspError::InvalidParameter {
                what: "histogram bounds must be finite with lo < hi",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        })
    }

    /// Builds a histogram directly from `values` over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Same as [`Histogram::new`].
    pub fn from_values(values: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self, DspError> {
        let mut h = Self::new(lo, hi, bins)?;
        h.extend(values.iter().copied());
        Ok(h)
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() || value < self.lo || value >= self.hi {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((value - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples that fell outside `[lo, hi)`.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Center of the fullest bin — the distribution's mode, i.e. the "peak"
    /// whose shift Fig. 6 reads for Trojan detection. `None` when empty.
    pub fn peak(&self) -> Option<f64> {
        if self.total() == 0 {
            return None;
        }
        let (idx, _) = self.counts.iter().enumerate().max_by_key(|(_, &c)| c)?;
        Some(self.bin_center(idx))
    }

    /// Overlap coefficient with another histogram over the same bins:
    /// `Σ min(p_i, q_i)` of the normalized distributions, in `[0, 1]`.
    /// 1 means indistinguishable (external probe in Fig. 6 a–d), values
    /// near 0 mean cleanly separated (on-chip sensor).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if the bin layout differs, or
    /// [`DspError::InvalidParameter`] if the ranges differ.
    pub fn overlap(&self, other: &Histogram) -> Result<f64, DspError> {
        if self.counts.len() != other.counts.len() {
            return Err(DspError::LengthMismatch {
                expected: self.counts.len(),
                actual: other.counts.len(),
            });
        }
        if (self.lo - other.lo).abs() > 1e-12 || (self.hi - other.hi).abs() > 1e-12 {
            return Err(DspError::InvalidParameter {
                what: "histograms must share the same range",
            });
        }
        let (ta, tb) = (self.total() as f64, other.total() as f64);
        if ta == 0.0 || tb == 0.0 {
            return Ok(0.0);
        }
        Ok(self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| (a as f64 / ta).min(b as f64 / tb))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_bins() {
        let h = Histogram::from_values(&[0.0, 0.1, 0.95, 0.99], 0.0, 1.0, 10).unwrap();
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_samples_are_outliers() {
        let h = Histogram::from_values(&[-1.0, 2.0, f64::NAN, 0.5], 0.0, 1.0, 4).unwrap();
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn upper_bound_is_exclusive() {
        let h = Histogram::from_values(&[1.0], 0.0, 1.0, 4).unwrap();
        assert_eq!(h.outliers(), 1);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn peak_finds_the_mode() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend([1.5, 5.5, 5.6, 5.4, 9.0].iter().copied());
        assert!((h.peak().unwrap() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn peak_of_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.peak().is_none());
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
        assert!((h.bin_width() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_fully_overlap() {
        let a = Histogram::from_values(&[0.1, 0.2, 0.3], 0.0, 1.0, 10).unwrap();
        let b = a.clone();
        assert!((a.overlap(&b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_do_not_overlap() {
        let a = Histogram::from_values(&[0.1, 0.15], 0.0, 1.0, 10).unwrap();
        let b = Histogram::from_values(&[0.9, 0.95], 0.0, 1.0, 10).unwrap();
        assert_eq!(a.overlap(&b).unwrap(), 0.0);
    }

    #[test]
    fn overlap_rejects_mismatched_layouts() {
        let a = Histogram::new(0.0, 1.0, 10).unwrap();
        let b = Histogram::new(0.0, 1.0, 20).unwrap();
        assert!(a.overlap(&b).is_err());
        let c = Histogram::new(0.0, 2.0, 10).unwrap();
        assert!(a.overlap(&c).is_err());
    }

    #[test]
    fn overlap_with_empty_is_zero() {
        let a = Histogram::from_values(&[0.5], 0.0, 1.0, 10).unwrap();
        let b = Histogram::new(0.0, 1.0, 10).unwrap();
        assert_eq!(a.overlap(&b).unwrap(), 0.0);
    }
}
