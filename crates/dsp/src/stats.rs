//! Scalar statistics: RMS, SNR (paper Eq. 2 and Eq. 3), moments and
//! normalization helpers used throughout trace processing.

use crate::DspError;

/// Arithmetic mean of `xs`. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of `xs`. Returns `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of `xs`.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median of `xs` (upper median for even lengths). Returns `0.0` for an
/// empty slice. NaNs compare equal to everything and end up wherever the
/// sort leaves them — callers screening for finiteness first get the
/// exact order statistic.
///
/// The spectral detectors use this as a robust per-spectrum noise-floor
/// estimate: a handful of strong clock harmonics cannot drag the median
/// the way they would drag the mean.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[v.len() / 2]
}

/// Root-mean-square value of `xs`. Returns `0.0` for an empty slice.
///
/// This is the quantity the paper feeds into Eq. 2:
/// `SNR_voltage = SignalVoltage_RMS / NoiseVoltage_RMS`.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Voltage-ratio SNR per the paper's Eq. 2.
///
/// Returns `f64::INFINITY` when `noise_rms == 0` and the signal is nonzero,
/// and `0.0` when both are zero.
pub fn snr_voltage(signal_rms: f64, noise_rms: f64) -> f64 {
    if noise_rms == 0.0 {
        if signal_rms == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        signal_rms / noise_rms
    }
}

/// SNR in decibels per the paper's Eq. 3: `SNR_dB = 20·log10(SNR_voltage)`.
pub fn snr_db(signal_rms: f64, noise_rms: f64) -> f64 {
    20.0 * snr_voltage(signal_rms, noise_rms).log10()
}

/// Minimum and maximum of `xs`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `xs` is empty.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64), DspError> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Ok((lo, hi))
}

/// Subtracts the mean from `xs` in place (DC removal).
pub fn remove_mean(xs: &mut [f64]) {
    let m = mean(xs);
    for x in xs.iter_mut() {
        *x -= m;
    }
}

/// Scales `xs` in place to unit RMS. A zero signal is left unchanged.
pub fn normalize_rms(xs: &mut [f64]) {
    let r = rms(xs);
    if r > 0.0 {
        for x in xs.iter_mut() {
            *x /= r;
        }
    }
}

/// Scales `xs` in place to unit Euclidean norm. A zero vector is unchanged.
pub fn normalize_l2(xs: &mut [f64]) {
    let n = xs.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in xs.iter_mut() {
            *x /= n;
        }
    }
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if lengths differ and
/// [`DspError::EmptyInput`] if the slices are empty.
pub fn correlation(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.len() != b.len() {
        return Err(DspError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    let denom = (da * db).sqrt();
    Ok(if denom == 0.0 { 0.0 } else { num / denom })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-15);
        assert!((variance(&xs) - 1.25).abs() < 1e-15);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn empty_slices_are_benign() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn rms_of_constant_is_its_magnitude() {
        assert!((rms(&[-3.0; 10]) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn median_is_the_order_statistic() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        // Upper median for even lengths (index n/2 after sorting).
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 3.0);
        // Robust to a dominating outlier.
        assert_eq!(median(&[1.0, 1.0, 1.0, 1.0, 1e9]), 1.0);
    }

    #[test]
    fn snr_matches_paper_equations() {
        // A 10:1 voltage ratio is exactly 20 dB.
        assert!((snr_db(10.0, 1.0) - 20.0).abs() < 1e-12);
        // The paper's on-chip simulated value: 29.976 dB ≈ ratio 31.55.
        let ratio = snr_voltage(31.55, 1.0);
        assert!((20.0 * ratio.log10() - 29.98).abs() < 0.01);
    }

    #[test]
    fn snr_degenerate_cases() {
        assert_eq!(snr_voltage(0.0, 0.0), 0.0);
        assert_eq!(snr_voltage(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn min_max_finds_extremes() {
        let (lo, hi) = min_max(&[3.0, -1.0, 4.0, 1.5]).unwrap();
        assert_eq!(lo, -1.0);
        assert_eq!(hi, 4.0);
    }

    #[test]
    fn remove_mean_zeroes_the_mean() {
        let mut xs = vec![1.0, 2.0, 3.0, 10.0];
        remove_mean(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
    }

    #[test]
    fn normalize_rms_gives_unit_rms() {
        let mut xs = vec![1.0, -2.0, 3.0, -4.0];
        normalize_rms(&mut xs);
        assert!((rms(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut xs = vec![0.0; 4];
        normalize_l2(&mut xs);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn correlation_of_identical_signals_is_one() {
        let a = [1.0, 3.0, 2.0, 5.0];
        assert!((correlation(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_negated_signal_is_minus_one() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_rejects_mismatched_lengths() {
        assert!(correlation(&[1.0], &[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn rms_is_nonnegative_and_bounded_by_max_abs(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..200)
        ) {
            let r = rms(&xs);
            let max_abs = xs.iter().fold(0.0f64, |m, x| m.max(x.abs()));
            prop_assert!(r >= 0.0);
            prop_assert!(r <= max_abs + 1e-9);
        }

        #[test]
        fn normalized_l2_has_unit_norm(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..100)
        ) {
            prop_assume!(xs.iter().any(|&x| x.abs() > 1e-6));
            let mut ys = xs.clone();
            normalize_l2(&mut ys);
            let n: f64 = ys.iter().map(|y| y * y).sum::<f64>().sqrt();
            prop_assert!((n - 1.0).abs() < 1e-9);
        }

        #[test]
        fn correlation_is_within_unit_interval(
            a in proptest::collection::vec(-100.0f64..100.0, 4..64),
        ) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            let c = correlation(&a, &b).unwrap();
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }
}
