//! Deterministic chunked parallel execution on scoped threads.
//!
//! The substrate every parallel hot path in the workspace builds on.
//! Work is split into **fixed-size chunks whose boundaries depend only on
//! the chunk size, never on the worker count**; workers pull chunks from a
//! shared atomic cursor and results are merged back in chunk order. Any
//! stage whose per-chunk computation is a pure function of the chunk
//! therefore produces **bit-identical output for every worker count** —
//! the property the trust monitor's determinism guarantee rests on.
//!
//! Scoped `std::thread` workers are used rather than an external pool
//! crate: the build environment is offline, and the chunk granularity here
//! (whole EM traces, blocks of distance pairs) makes pool reuse overhead
//! irrelevant.

use emtrust_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of hardware threads the host offers, detected once and cached.
///
/// Every pool clamps its effective worker count to this value: running
/// more compute-bound workers than cores only adds time-slicing overhead
/// (the `BENCH_parallel.json` scaling cliff), and because chunk layout —
/// and therefore every result bit — is independent of the worker count,
/// the clamp is always safe to apply.
pub fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Splits `n_items` into contiguous chunks of at most `chunk_size`, maps
/// every chunk with `f` on up to `workers` threads, and returns the
/// per-chunk outputs concatenated in chunk order.
///
/// `f` receives the half-open item range of its chunk. The chunk layout is
/// a pure function of `(n_items, chunk_size)`, so for a chunk-pure `f` the
/// result is identical for every `workers` value, including 1 (which runs
/// inline on the caller's thread, with no spawn at all).
///
/// # Errors
///
/// If any chunk returns an error, the error from the **lowest-indexed**
/// failing chunk is returned — again independent of the worker count.
pub fn chunked_try_map<R, E, F>(
    n_items: usize,
    chunk_size: usize,
    workers: usize,
    f: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(std::ops::Range<usize>) -> Result<Vec<R>, E> + Sync,
{
    let chunk_size = chunk_size.max(1);
    // Oversubscription clamp: requesting more workers than the host has
    // hardware threads can only slow a compute-bound pool down, and the
    // worker count never affects results, so the cap is applied here —
    // beneath every call site — rather than trusting each caller.
    let workers = workers.max(1).min(host_parallelism());
    let n_chunks = n_items.div_ceil(chunk_size);
    if n_items == 0 {
        return Ok(Vec::new());
    }
    // Per-worker chunk timing: when a recorder is installed, every chunk
    // records its wall time under `pool.worker.<w>.chunk_ns` (the inline
    // degenerate pool is worker 0). Disabled cost: one atomic load.
    let run_chunk = |worker: usize, lo: usize, hi: usize| {
        if telemetry::is_enabled() {
            telemetry::counter("pool.chunks", 1);
            telemetry::time(&format!("pool.worker.{worker}.chunk_ns"), || f(lo..hi))
        } else {
            f(lo..hi)
        }
    };
    if workers == 1 || n_chunks == 1 {
        // Degenerate pool: run inline, chunk by chunk, same chunk layout.
        let mut out = Vec::with_capacity(n_items);
        for c in 0..n_chunks {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(n_items);
            out.extend(run_chunk(0, lo, hi)?);
        }
        return Ok(out);
    }

    type ChunkSlot<R, E> = (usize, Result<Vec<R>, E>);
    let cursor = AtomicUsize::new(0);
    // (chunk index, chunk output) pairs, pushed in completion order.
    let done: Mutex<Vec<ChunkSlot<R, E>>> = Mutex::new(Vec::with_capacity(n_chunks));
    let n_threads = workers.min(n_chunks);
    std::thread::scope(|scope| {
        for w in 0..n_threads {
            let (run_chunk, cursor, done) = (&run_chunk, &cursor, &done);
            scope.spawn(move || loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(n_items);
                let result = run_chunk(w, lo, hi);
                // A poisoned lock only means another worker panicked after
                // pushing its chunk; the data inside is still consistent.
                done.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .push((c, result));
            });
        }
    });

    let mut chunks = done
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    chunks.sort_by_key(|(c, _)| *c);
    let mut out = Vec::with_capacity(n_items);
    for (_, result) in chunks {
        out.extend(result?);
    }
    Ok(out)
}

/// Infallible variant of [`chunked_try_map`].
pub fn chunked_map<R, F>(n_items: usize, chunk_size: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    match chunked_try_map::<R, std::convert::Infallible, _>(n_items, chunk_size, workers, |r| {
        Ok(f(r))
    }) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Parallel max-reduction over chunks. `f` maps an item range to a partial
/// maximum; partials are folded with `f64::max`, which is associative and
/// commutative, so the result is bit-identical for every worker count.
/// Returns `neutral` when `n_items` is zero.
pub fn chunked_max<F>(n_items: usize, chunk_size: usize, workers: usize, neutral: f64, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    chunked_map(n_items, chunk_size, workers, |r| vec![f(r)])
        .into_iter()
        .fold(neutral, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_for_any_worker_count() {
        let reference: Vec<usize> = (0..103).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            for chunk in [1, 4, 7, 103, 1000] {
                let got = chunked_map(103, chunk, workers, |r| {
                    r.map(|i| i * i).collect::<Vec<_>>()
                });
                assert_eq!(got, reference, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got = chunked_map(0, 8, 4, |r| r.collect::<Vec<_>>());
        assert!(got.is_empty());
    }

    #[test]
    fn lowest_failing_chunk_wins_regardless_of_workers() {
        for workers in [1, 2, 8] {
            let got: Result<Vec<usize>, usize> = chunked_try_map(100, 10, workers, |r| {
                if r.start >= 30 {
                    Err(r.start)
                } else {
                    Ok(r.collect())
                }
            });
            assert_eq!(got.unwrap_err(), 30, "workers={workers}");
        }
    }

    #[test]
    fn max_reduction_matches_serial_fold() {
        let values: Vec<f64> = (0..517).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let serial = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for workers in [1, 2, 5, 16] {
            let par = chunked_max(values.len(), 13, workers, f64::NEG_INFINITY, |r| {
                values[r].iter().copied().fold(f64::NEG_INFINITY, f64::max)
            });
            assert_eq!(par.to_bits(), serial.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn oversubscribed_workers_are_harmless() {
        let got = chunked_map(5, 2, 100, |r| r.collect::<Vec<_>>());
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn host_parallelism_is_positive_and_stable() {
        let a = host_parallelism();
        assert!(a >= 1);
        assert_eq!(a, host_parallelism());
    }

    #[test]
    fn clamped_pool_is_bit_identical_to_unclamped_request() {
        // Requesting far more workers than the host has must produce the
        // same bits as a serial run — the clamp only changes scheduling.
        let values: Vec<f64> = (0..257).map(|i| (i as f64 * 0.7).sin()).collect();
        let serial: Vec<f64> = chunked_map(values.len(), 8, 1, |r| {
            r.map(|i| values[i] * values[i]).collect::<Vec<_>>()
        });
        let huge = chunked_map(values.len(), 8, 10_000, |r| {
            r.map(|i| values[i] * values[i]).collect::<Vec<_>>()
        });
        for (a, b) in serial.iter().zip(&huge) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
