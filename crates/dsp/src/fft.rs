//! Iterative radix-2 fast Fourier transform.
//!
//! The trust-evaluation framework inspects EM traces in the frequency domain
//! (paper §III-E and Fig. 4/Fig. 6 i–l), so the FFT is a load-bearing
//! substrate. This implementation is the classic Cooley–Tukey
//! decimation-in-time transform with an in-place bit-reversal permutation.

use crate::DspError;

/// A complex number over `f64`.
///
/// A deliberately small, local type: the crate does not pull in a numerics
/// dependency for the handful of operations the FFT needs.
///
/// # Examples
///
/// ```
/// use emtrust_dsp::fft::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Self = Self::new(0.0, 0.0);

    /// `e^{iθ}` for a phase `theta` in radians.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Scales both parts by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

/// Performs an in-place forward FFT on `buf`.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `buf.len()` is not a power of two,
/// and [`DspError::EmptyInput`] if it is empty.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), emtrust_dsp::DspError> {
/// use emtrust_dsp::fft::{fft_in_place, Complex};
///
/// // A DC signal concentrates all energy in bin 0.
/// let mut buf = vec![Complex::new(1.0, 0.0); 8];
/// fft_in_place(&mut buf)?;
/// assert!((buf[0].re - 8.0).abs() < 1e-12);
/// assert!(buf[1..].iter().all(|c| c.abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    emtrust_telemetry::counter("fft.transforms", 1);
    transform(buf, Direction::Forward)
}

/// Performs an in-place inverse FFT on `buf`, including the `1/N` scaling.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `buf.len()` is not a power of two,
/// and [`DspError::EmptyInput`] if it is empty.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, Direction::Inverse)?;
    let scale = 1.0 / buf.len() as f64;
    for c in buf.iter_mut() {
        *c = c.scale(scale);
    }
    Ok(())
}

/// Computes the FFT of a real-valued signal, returning the complex bins.
///
/// The output has the same length as the input; bins above `N/2` mirror the
/// lower half (conjugate symmetry).
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `signal.len()` is not a power of
/// two, and [`DspError::EmptyInput`] if it is empty.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Returns the next power of two `>= n` (and `>= 1`).
///
/// Useful for choosing FFT sizes for arbitrary-length traces: callers
/// zero-pad up to this length.
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Zero-pads `signal` to the next power of two and returns its FFT.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
pub fn fft_real_padded(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = next_power_of_two(signal.len());
    let mut buf: Vec<Complex> = Vec::with_capacity(n);
    buf.extend(signal.iter().map(|&x| Complex::from(x)));
    buf.resize(n, Complex::ZERO);
    fft_in_place(&mut buf)?;
    Ok(buf)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

fn transform(buf: &mut [Complex], dir: Direction) -> Result<(), DspError> {
    let n = buf.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !n.is_power_of_two() {
        return Err(DspError::NotPowerOfTwo { len: n });
    }
    if n == 1 {
        return Ok(());
    }

    bit_reverse_permute(buf);

    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    // Per-stage twiddle table. The factors are generated with the same
    // `w = w * wlen` recurrence the butterflies used to run inline, so
    // every value — and therefore every output bit — is unchanged; but
    // hoisting them out of the butterfly loop removes the loop-carried
    // complex multiply, leaving an inner loop of independent
    // load/multiply/add triples the compiler can pipeline and vectorize.
    let mut twiddles: Vec<Complex> = Vec::with_capacity(n / 2);

    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        let half = len / 2;
        twiddles.clear();
        let mut w = Complex::new(1.0, 0.0);
        for _ in 0..half {
            twiddles.push(w);
            w = w * wlen;
        }
        let mut i = 0;
        while i < n {
            // Split the block into its even/odd halves so the inner loop
            // indexes three parallel slices with no aliasing and no
            // cross-iteration dependency.
            let (lo, hi) = buf[i..i + len].split_at_mut(half);
            for ((a, b), &tw) in lo.iter_mut().zip(hi.iter_mut()).zip(&twiddles) {
                let u = *a;
                let v = *b * tw;
                *a = u + v;
                *b = u - v;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

fn bit_reverse_permute(buf: &mut [Complex]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dft(signal: &[f64]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in signal.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc = acc + Complex::from_polar_unit(ang).scale(x);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let signal: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let fast = fft_real(&signal).unwrap();
        let slow = naive_dft(&signal);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 256;
        let k = 17;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64).cos())
            .collect();
        let bins = fft_real(&signal).unwrap();
        // cos splits between bins k and n-k, each of magnitude n/2.
        assert!((bins[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((bins[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, b) in bins.iter().enumerate() {
            if i != k && i != n - k {
                assert!(b.abs() < 1e-9, "bin {i} = {}", b.abs());
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let err = fft_real(&[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, DspError::NotPowerOfTwo { len: 3 });
    }

    #[test]
    fn rejects_empty() {
        let err = fft_real(&[]).unwrap_err();
        assert_eq!(err, DspError::EmptyInput);
    }

    #[test]
    fn single_element_is_identity() {
        let bins = fft_real(&[42.0]).unwrap();
        assert_eq!(bins.len(), 1);
        assert!((bins[0].re - 42.0).abs() < 1e-15);
    }

    #[test]
    fn padded_fft_extends_to_power_of_two() {
        let bins = fft_real_padded(&[1.0; 100]).unwrap();
        assert_eq!(bins.len(), 128);
    }

    #[test]
    fn real_input_has_conjugate_symmetry() {
        let signal: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let bins = fft_real(&signal).unwrap();
        for k in 1..16 {
            let a = bins[k];
            let b = bins[32 - k].conj();
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn complex_arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!((z.abs() - 5.0).abs() < 1e-15);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-15);
        assert_eq!(z.conj().im, 4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z.scale(2.0), Complex::new(6.0, -8.0));
    }

    /// The pre-table transform: twiddles generated by the same recurrence
    /// but inline in the butterfly loop. The production transform must
    /// reproduce this bit for bit.
    fn reference_transform(buf: &mut [Complex], sign: f64) {
        let n = buf.len();
        bit_reverse_permute(buf);
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::from_polar_unit(ang);
            let mut i = 0;
            while i < n {
                let mut w = Complex::new(1.0, 0.0);
                for j in 0..len / 2 {
                    let u = buf[i + j];
                    let v = buf[i + j + len / 2] * w;
                    buf[i + j] = u + v;
                    buf[i + j + len / 2] = u - v;
                    w = w * wlen;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    proptest! {
        #[test]
        fn table_fft_is_bit_identical_to_scalar_reference(
            signal in proptest::collection::vec(-100.0f64..100.0, 128..=128),
        ) {
            let mut fast: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
            let mut slow = fast.clone();
            fft_in_place(&mut fast).unwrap();
            reference_transform(&mut slow, -1.0);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }

        #[test]
        fn ifft_inverts_fft(signal in proptest::collection::vec(-100.0f64..100.0, 1..=128)) {
            // Round length down to a power of two.
            let n = 1usize << (usize::BITS - 1 - signal.len().leading_zeros());
            let signal = &signal[..n];
            let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
            fft_in_place(&mut buf).unwrap();
            ifft_in_place(&mut buf).unwrap();
            for (orig, round) in signal.iter().zip(&buf) {
                prop_assert!((orig - round.re).abs() < 1e-9);
                prop_assert!(round.im.abs() < 1e-9);
            }
        }

        #[test]
        fn parseval_energy_is_conserved(signal in proptest::collection::vec(-10.0f64..10.0, 64..=64)) {
            let time_energy: f64 = signal.iter().map(|x| x * x).sum();
            let bins = fft_real(&signal).unwrap();
            let freq_energy: f64 = bins.iter().map(|c| c.norm_sqr()).sum::<f64>() / 64.0;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }
    }
}
