//! Incremental sliding-window DFT for streaming spectra.
//!
//! Continuous acquisition produces one long trace that a streaming
//! detector wants to re-analyze every few samples. Recomputing a radix-2
//! FFT per hop costs `O(N log N)`; the sliding DFT updates every
//! one-sided bin in `O(1)` per new sample — `O(N)` for a fully refreshed
//! window — using the classic recurrence
//!
//! ```text
//! X_k' = (X_k − x_old + x_new) · e^{+i 2π k / N}
//! ```
//!
//! which holds for the forward convention `X_k = Σ_m x_m e^{−i 2π k m / N}`
//! used by [`crate::fft`]. The rotation accumulates rounding drift, so the
//! bins are periodically renormalized by an exact FFT of the ring buffer;
//! the estimator is therefore tolerance-equivalent (not bit-identical) to
//! a full recompute, which the tests pin down.

use crate::fft::{fft_real, Complex};
use crate::spectrum::Spectrum;
use crate::DspError;

/// Renormalization cadence in multiples of the window length: after this
/// many windows' worth of pushes, the bins are recomputed exactly from
/// the ring buffer to squelch accumulated rotation drift.
const RENORM_WINDOWS: usize = 64;

/// A sliding-window DFT over the last `window_len` pushed samples.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), emtrust_dsp::DspError> {
/// use emtrust_dsp::sliding::SlidingDft;
///
/// let fs = 1024.0;
/// let mut dft = SlidingDft::new(256)?;
/// // A bin-aligned 64 Hz tone of amplitude 2.
/// for i in 0..256 {
///     dft.push(2.0 * (2.0 * std::f64::consts::PI * 64.0 * i as f64 / fs).sin());
/// }
/// assert!(dft.is_warm());
/// let spec = dft.spectrum(fs)?;
/// let m = spec.magnitude_at(64.0).expect("in range");
/// assert!((m - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingDft {
    /// Circular sample buffer; `head` indexes the oldest sample.
    ring: Vec<f64>,
    head: usize,
    filled: usize,
    /// One-sided bins `0..=N/2` of the current window.
    bins: Vec<Complex>,
    /// Per-bin rotation `e^{+i 2π k / N}`.
    twiddles: Vec<Complex>,
    /// Pushes since the last exact renormalization.
    pushes: usize,
}

impl SlidingDft {
    /// Creates a sliding DFT over windows of `window_len` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] unless `window_len` is a power
    /// of two of at least 2 (the renormalization pass reuses the radix-2
    /// FFT).
    pub fn new(window_len: usize) -> Result<Self, DspError> {
        if window_len < 2 || !window_len.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { len: window_len });
        }
        let half = window_len / 2 + 1;
        let step = 2.0 * std::f64::consts::PI / window_len as f64;
        let twiddles: Vec<Complex> = (0..half)
            .map(|k| Complex::from_polar_unit(step * k as f64))
            .collect();
        Ok(Self {
            ring: vec![0.0; window_len],
            head: 0,
            filled: 0,
            bins: vec![Complex::ZERO; half],
            twiddles,
            pushes: 0,
        })
    }

    /// The window length in samples.
    pub fn window_len(&self) -> usize {
        self.ring.len()
    }

    /// Whether a full window has been pushed (before that, the implicit
    /// leading zeros of the ring still participate in the bins).
    pub fn is_warm(&self) -> bool {
        self.filled >= self.ring.len()
    }

    /// Slides the window forward by one sample in `O(window_len)` bin
    /// updates.
    pub fn push(&mut self, x: f64) {
        let x_old = self.ring[self.head];
        self.ring[self.head] = x;
        self.head = (self.head + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());
        let delta = Complex::from(x - x_old);
        for (b, &tw) in self.bins.iter_mut().zip(&self.twiddles) {
            *b = (*b + delta) * tw;
        }
        self.pushes += 1;
        if self.pushes >= RENORM_WINDOWS * self.ring.len() {
            self.renormalize();
        }
    }

    /// Pushes every sample of `samples` in order.
    pub fn extend(&mut self, samples: &[f64]) {
        for &x in samples {
            self.push(x);
        }
    }

    /// The one-sided DFT bins `0..=N/2` of the current window (oldest
    /// sample at phase index 0), in the forward `e^{−i2πkm/N}` convention.
    pub fn bins(&self) -> &[Complex] {
        &self.bins
    }

    /// The current window's one-sided magnitude [`Spectrum`], normalized
    /// exactly like [`Spectrum::compute`] with a rectangular window, so it
    /// is directly comparable against batch-estimated spectra of the same
    /// length and rate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `sample_rate_hz <= 0`.
    pub fn spectrum(&self, sample_rate_hz: f64) -> Result<Spectrum, DspError> {
        let n = self.ring.len();
        let scale = 2.0 / n as f64;
        let magnitudes: Vec<f64> = self
            .bins
            .iter()
            .enumerate()
            .map(|(k, c)| {
                let s = if k == 0 || k == n / 2 {
                    scale / 2.0
                } else {
                    scale
                };
                c.abs() * s
            })
            .collect();
        let df = sample_rate_hz / n as f64;
        let freqs_hz: Vec<f64> = (0..self.bins.len()).map(|k| k as f64 * df).collect();
        Spectrum::from_one_sided_parts(freqs_hz, magnitudes, sample_rate_hz)
    }

    /// Recomputes the bins exactly from the ring buffer, discarding the
    /// rotation drift of the incremental updates.
    fn renormalize(&mut self) {
        let n = self.ring.len();
        let mut linear = Vec::with_capacity(n);
        linear.extend_from_slice(&self.ring[self.head..]);
        linear.extend_from_slice(&self.ring[..self.head]);
        // The length is a power of two by construction, so the FFT cannot
        // fail; keep the drifted bins if it somehow does.
        if let Ok(full) = fft_real(&linear) {
            let half = self.bins.len();
            self.bins.copy_from_slice(&full[..half]);
        }
        self.pushes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Largest relative deviation between the sliding bins and an exact
    /// FFT of the same window.
    fn max_bin_error(dft: &SlidingDft, window: &[f64]) -> f64 {
        let exact = fft_real(window).unwrap();
        let scale = window.len() as f64;
        dft.bins()
            .iter()
            .zip(&exact[..dft.bins().len()])
            .map(|(a, b)| (*a - *b).abs() / scale)
            .fold(0.0, f64::max)
    }

    #[test]
    fn warm_window_matches_exact_fft() {
        let fs = 512.0;
        let n = 128;
        let signal: Vec<f64> = (0..400)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * std::f64::consts::PI * 48.0 * t).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * 130.0 * t).cos()
            })
            .collect();
        let mut dft = SlidingDft::new(n).unwrap();
        for (i, &x) in signal.iter().enumerate() {
            dft.push(x);
            if i + 1 >= n {
                assert!(dft.is_warm());
                let err = max_bin_error(&dft, &signal[i + 1 - n..=i]);
                assert!(err < 1e-10, "window ending at {i}: error {err:.3e}");
            }
        }
    }

    #[test]
    fn spectrum_matches_batch_compute() {
        use crate::spectrum::Spectrum;
        use crate::window::Window;
        let fs = 1024.0;
        let n = 64;
        let signal: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * 96.0 * i as f64 / fs).sin())
            .collect();
        let mut dft = SlidingDft::new(n).unwrap();
        dft.extend(&signal);
        let streamed = dft.spectrum(fs).unwrap();
        let last = &signal[signal.len() - n..];
        let batch = Spectrum::compute(last, fs, Window::Rectangular).unwrap();
        assert_eq!(streamed.freqs_hz(), batch.freqs_hz());
        for (a, b) in streamed.magnitudes().iter().zip(batch.magnitudes()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn renormalization_bounds_long_run_drift() {
        let fs = 256.0;
        let n = 32;
        // Long enough to cross several renormalization points.
        let total = RENORM_WINDOWS * n * 3 + n / 2;
        let signal: Vec<f64> = (0..total)
            .map(|i| (2.0 * std::f64::consts::PI * 40.0 * i as f64 / fs).sin() + 0.1)
            .collect();
        let mut dft = SlidingDft::new(n).unwrap();
        dft.extend(&signal);
        let err = max_bin_error(&dft, &signal[total - n..]);
        assert!(err < 1e-9, "drift after {total} pushes: {err:.3e}");
    }

    #[test]
    fn cold_window_treats_missing_samples_as_zero() {
        let n = 16;
        let mut dft = SlidingDft::new(n).unwrap();
        assert!(!dft.is_warm());
        dft.extend(&[1.0, -2.0, 3.0]);
        assert!(!dft.is_warm());
        let mut padded = vec![0.0; n];
        padded[n - 3..].copy_from_slice(&[1.0, -2.0, 3.0]);
        let err = max_bin_error(&dft, &padded);
        assert!(err < 1e-12, "cold-window error {err:.3e}");
    }

    #[test]
    fn rejects_bad_window_and_rate() {
        assert!(SlidingDft::new(0).is_err());
        assert!(SlidingDft::new(1).is_err());
        assert!(SlidingDft::new(48).is_err());
        let dft = SlidingDft::new(8).unwrap();
        assert!(dft.spectrum(0.0).is_err());
        assert!(dft.spectrum(-1.0).is_err());
    }

    proptest! {
        /// The incremental estimator agrees with a full FFT recompute on
        /// random signals, at every full-window position.
        #[test]
        fn sliding_dft_matches_full_recompute_on_random_windows(
            samples in proptest::collection::vec(-1.0f64..1.0, 64..200),
            exp in 3u32..7,
        ) {
            let n = 1usize << exp;
            let mut dft = SlidingDft::new(n).unwrap();
            for (i, &x) in samples.iter().enumerate() {
                dft.push(x);
                if i + 1 >= n {
                    let err = max_bin_error(&dft, &samples[i + 1 - n..=i]);
                    prop_assert!(err < 1e-10, "window ending at {}: {:.3e}", i, err);
                }
            }
        }
    }
}
