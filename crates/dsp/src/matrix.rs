//! A small dense matrix — just enough linear algebra for PCA.
//!
//! The analysis module needs covariance matrices and an eigensolver; a full
//! linear-algebra dependency would be overkill, so this module provides a
//! row-major `f64` matrix with the handful of operations [`crate::pca`]
//! requires.

use crate::DspError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use emtrust_dsp::matrix::Matrix;
    ///
    /// let m = Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert_eq!(m.get(1, 2), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty row set and
    /// [`DspError::LengthMismatch`] if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, DspError> {
        let first = rows.first().ok_or(DspError::EmptyInput)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(DspError::LengthMismatch {
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when the inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, DspError> {
        if self.cols != rhs.rows {
            return Err(DspError::LengthMismatch {
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c) + a * rhs.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, DspError> {
        if v.len() != self.cols {
            return Err(DspError::LengthMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 2);
        assert_eq!(z.get(0, 0), 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
    }

    #[test]
    fn multiply_by_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn mul_rejects_bad_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn mul_vec_known_result() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        assert_eq!(m.mul_vec(&[3.0, 4.0]).unwrap(), vec![3.0, 8.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.5, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }
}
