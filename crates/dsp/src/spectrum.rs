//! One-sided magnitude spectra and Welch averaging.
//!
//! The spectral detector (paper §III-E, Fig. 4, Fig. 6 i–l) works on the
//! magnitude spectrum of the sensor trace: the clock fundamental and its
//! harmonics dominate, and Trojans either add lines (`T ≠ g`) or boost
//! existing ones (`T = g`).

use crate::fft::{fft_real_padded, next_power_of_two};
use crate::window::Window;
use crate::DspError;

/// A one-sided magnitude spectrum with its frequency axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    freqs_hz: Vec<f64>,
    magnitudes: Vec<f64>,
    sample_rate_hz: f64,
}

impl Spectrum {
    /// Computes the one-sided magnitude spectrum of `signal` sampled at
    /// `sample_rate_hz`, after applying `window` and zero-padding to a
    /// power of two.
    ///
    /// Magnitudes are normalized by `N/2` and the window's coherent gain so
    /// a full-scale sine of amplitude `A` reads `≈ A` in its bin.
    ///
    /// # Errors
    ///
    /// - [`DspError::EmptyInput`] if `signal` is empty,
    /// - [`DspError::InvalidParameter`] if `sample_rate_hz <= 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), emtrust_dsp::DspError> {
    /// use emtrust_dsp::spectrum::Spectrum;
    /// use emtrust_dsp::window::Window;
    ///
    /// let fs = 1000.0;
    /// let signal: Vec<f64> = (0..1024)
    ///     .map(|i| (2.0 * std::f64::consts::PI * 125.0 * i as f64 / fs).sin())
    ///     .collect();
    /// let spec = Spectrum::compute(&signal, fs, Window::Rectangular)?;
    /// let peak = spec.dominant_peak().expect("nonempty");
    /// assert!((peak.frequency_hz - 125.0).abs() < 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(signal: &[f64], sample_rate_hz: f64, window: Window) -> Result<Self, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if sample_rate_hz <= 0.0 {
            return Err(DspError::InvalidParameter {
                what: "sample rate must be positive",
            });
        }
        let mut windowed = signal.to_vec();
        window.apply(&mut windowed);
        let gain = window.coherent_gain(signal.len()).max(1e-12);

        let bins = fft_real_padded(&windowed)?;
        let n = bins.len();
        let half = n / 2 + 1;
        let scale = 2.0 / (signal.len() as f64 * gain);
        let magnitudes: Vec<f64> = bins[..half]
            .iter()
            .enumerate()
            .map(|(k, c)| {
                // DC and Nyquist bins are not doubled.
                let s = if k == 0 || (n % 2 == 0 && k == n / 2) {
                    scale / 2.0
                } else {
                    scale
                };
                c.abs() * s
            })
            .collect();
        let df = sample_rate_hz / n as f64;
        let freqs_hz: Vec<f64> = (0..half).map(|k| k as f64 * df).collect();
        Ok(Self {
            freqs_hz,
            magnitudes,
            sample_rate_hz,
        })
    }

    /// Welch-style averaged spectrum: splits `signal` into `segments`
    /// half-overlapping pieces, computes a windowed spectrum of each and
    /// averages the magnitudes. Reduces the variance of the estimate, which
    /// matters when hunting small Trojan lines in noise.
    ///
    /// # Errors
    ///
    /// - [`DspError::InvalidParameter`] if `segments == 0` or the signal is
    ///   too short to split,
    /// - errors from [`Spectrum::compute`] on degenerate inputs.
    pub fn welch(
        signal: &[f64],
        sample_rate_hz: f64,
        window: Window,
        segments: usize,
    ) -> Result<Self, DspError> {
        if segments == 0 {
            return Err(DspError::InvalidParameter {
                what: "segment count must be positive",
            });
        }
        if segments == 1 {
            return Self::compute(signal, sample_rate_hz, window);
        }
        // Half-overlapping segments: hop = len / (segments + 1).
        let seg_len = 2 * signal.len() / (segments + 1);
        if seg_len < 2 {
            return Err(DspError::InvalidParameter {
                what: "signal too short for the requested segment count",
            });
        }
        // Fix the FFT size so all segments share a frequency axis.
        let padded = next_power_of_two(seg_len);
        let hop = seg_len / 2;
        let mut acc: Option<Spectrum> = None;
        let mut count = 0.0;
        let mut start = 0;
        while start + seg_len <= signal.len() {
            let mut seg = signal[start..start + seg_len].to_vec();
            seg.resize(padded, 0.0);
            let s = Spectrum::compute(&seg, sample_rate_hz, window)?;
            match &mut acc {
                None => acc = Some(s),
                Some(a) => {
                    for (m, x) in a.magnitudes.iter_mut().zip(&s.magnitudes) {
                        *m += x;
                    }
                }
            }
            count += 1.0;
            start += hop;
        }
        let mut out = acc.ok_or(DspError::InvalidParameter {
            what: "signal too short for the requested segment count",
        })?;
        for m in out.magnitudes.iter_mut() {
            *m /= count;
        }
        Ok(out)
    }

    /// Assembles a spectrum from an already-computed one-sided frequency
    /// axis and magnitude vector — the constructor behind streaming
    /// estimators (the sliding DFT, window-averaged baselines) that
    /// produce magnitudes without going through [`Self::compute`].
    ///
    /// # Errors
    ///
    /// - [`DspError::EmptyInput`] if `magnitudes` is empty,
    /// - [`DspError::LengthMismatch`] if the axis and magnitudes disagree
    ///   in length,
    /// - [`DspError::InvalidParameter`] if `sample_rate_hz <= 0`.
    pub fn from_one_sided_parts(
        freqs_hz: Vec<f64>,
        magnitudes: Vec<f64>,
        sample_rate_hz: f64,
    ) -> Result<Self, DspError> {
        if magnitudes.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if freqs_hz.len() != magnitudes.len() {
            return Err(DspError::LengthMismatch {
                expected: freqs_hz.len(),
                actual: magnitudes.len(),
            });
        }
        if sample_rate_hz <= 0.0 {
            return Err(DspError::InvalidParameter {
                what: "sample rate must be positive",
            });
        }
        Ok(Self {
            freqs_hz,
            magnitudes,
            sample_rate_hz,
        })
    }

    /// The frequency axis in hertz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Magnitude per bin (same length as [`Self::freqs_hz`]).
    pub fn magnitudes(&self) -> &[f64] {
        &self.magnitudes
    }

    /// The sample rate the spectrum was computed at.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Frequency resolution (bin spacing) in hertz.
    pub fn resolution_hz(&self) -> f64 {
        if self.freqs_hz.len() < 2 {
            self.sample_rate_hz
        } else {
            self.freqs_hz[1] - self.freqs_hz[0]
        }
    }

    /// Magnitude at the bin nearest `freq_hz`, or `None` if out of range.
    pub fn magnitude_at(&self, freq_hz: f64) -> Option<f64> {
        let idx = self.bin_of(freq_hz)?;
        Some(self.magnitudes[idx])
    }

    /// Index of the bin nearest `freq_hz`, or `None` if out of range.
    pub fn bin_of(&self, freq_hz: f64) -> Option<usize> {
        if freq_hz < 0.0 || freq_hz > *self.freqs_hz.last()? + self.resolution_hz() / 2.0 {
            return None;
        }
        let idx = (freq_hz / self.resolution_hz()).round() as usize;
        if idx < self.magnitudes.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// The largest non-DC bin.
    pub fn dominant_peak(&self) -> Option<SpectralPeak> {
        self.peaks(1).into_iter().next()
    }

    /// The `k` largest local maxima (excluding DC), descending by magnitude.
    pub fn peaks(&self, k: usize) -> Vec<SpectralPeak> {
        let mut candidates: Vec<SpectralPeak> = (1..self.magnitudes.len().saturating_sub(1))
            .filter(|&i| {
                self.magnitudes[i] >= self.magnitudes[i - 1]
                    && self.magnitudes[i] >= self.magnitudes[i + 1]
            })
            .map(|i| SpectralPeak {
                bin: i,
                frequency_hz: self.freqs_hz[i],
                magnitude: self.magnitudes[i],
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.magnitude
                .partial_cmp(&a.magnitude)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(k);
        candidates
    }

    /// Sum of magnitudes over `[lo_hz, hi_hz]` — band energy, used to detect
    /// T1's low-frequency AM carrier contribution.
    pub fn band_energy(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        self.freqs_hz
            .iter()
            .zip(&self.magnitudes)
            .filter(|(f, _)| **f >= lo_hz && **f <= hi_hz)
            .map(|(_, m)| m * m)
            .sum()
    }
}

/// A local maximum in a [`Spectrum`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralPeak {
    /// Bin index.
    pub bin: usize,
    /// Center frequency of the bin in hertz.
    pub frequency_hz: f64,
    /// Normalized magnitude.
    pub magnitude: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn sine_amplitude_is_recovered() {
        let fs = 1024.0;
        // Bin-aligned tone: 64 Hz with 1024 samples at 1024 Hz.
        let s = tone(64.0, fs, 1024, 2.5);
        let spec = Spectrum::compute(&s, fs, Window::Rectangular).unwrap();
        let m = spec.magnitude_at(64.0).unwrap();
        assert!((m - 2.5).abs() < 1e-9, "magnitude {m}");
    }

    #[test]
    fn dominant_peak_finds_the_tone() {
        let fs = 2048.0;
        let s = tone(300.0, fs, 2048, 1.0);
        let spec = Spectrum::compute(&s, fs, Window::Hann).unwrap();
        let p = spec.dominant_peak().unwrap();
        assert!((p.frequency_hz - 300.0).abs() <= spec.resolution_hz());
    }

    #[test]
    fn two_tones_give_two_peaks() {
        let fs = 4096.0;
        let mut s = tone(256.0, fs, 4096, 1.0);
        for (x, y) in s.iter_mut().zip(tone(1024.0, fs, 4096, 0.5)) {
            *x += y;
        }
        let spec = Spectrum::compute(&s, fs, Window::Hann).unwrap();
        let peaks = spec.peaks(2);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].frequency_hz - 256.0).abs() <= spec.resolution_hz());
        assert!((peaks[1].frequency_hz - 1024.0).abs() <= spec.resolution_hz());
    }

    #[test]
    fn band_energy_concentrates_around_tone() {
        let fs = 1024.0;
        let s = tone(128.0, fs, 1024, 1.0);
        let spec = Spectrum::compute(&s, fs, Window::Rectangular).unwrap();
        let in_band = spec.band_energy(120.0, 136.0);
        let out_band = spec.band_energy(300.0, 400.0);
        assert!(in_band > 100.0 * (out_band + 1e-12));
    }

    #[test]
    fn frequency_axis_spans_zero_to_nyquist() {
        let spec = Spectrum::compute(&vec![0.0; 256], 1000.0, Window::Rectangular).unwrap();
        assert_eq!(spec.freqs_hz()[0], 0.0);
        let last = *spec.freqs_hz().last().unwrap();
        assert!((last - 500.0).abs() < 1e-9);
        assert_eq!(spec.magnitudes().len(), 129);
    }

    #[test]
    fn rejects_empty_and_bad_rate() {
        assert!(Spectrum::compute(&[], 1.0, Window::Rectangular).is_err());
        assert!(Spectrum::compute(&[1.0], 0.0, Window::Rectangular).is_err());
        assert!(Spectrum::compute(&[1.0], -5.0, Window::Rectangular).is_err());
    }

    #[test]
    fn welch_reduces_noise_variance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let fs = 4096.0;
        let n = 8192;
        let signal: Vec<f64> = (0..n)
            .map(|i| {
                tone(512.0, fs, 1, 1.0)[0] * 0.0
                    + (2.0 * std::f64::consts::PI * 512.0 * i as f64 / fs).sin()
                    + rng.gen_range(-1.0..1.0)
            })
            .collect();
        let single = Spectrum::compute(&signal, fs, Window::Hann).unwrap();
        let averaged = Spectrum::welch(&signal, fs, Window::Hann, 8).unwrap();
        // Noise-floor variance: compare the spread of magnitudes away from
        // the tone.
        let floor_var = |s: &Spectrum| {
            let vals: Vec<f64> = s
                .freqs_hz()
                .iter()
                .zip(s.magnitudes())
                .filter(|(f, _)| **f > 1000.0 && **f < 1800.0)
                .map(|(_, m)| *m)
                .collect();
            crate::stats::variance(&vals)
        };
        assert!(floor_var(&averaged) < floor_var(&single));
    }

    #[test]
    fn welch_with_one_segment_equals_compute() {
        let fs = 512.0;
        let s = tone(64.0, fs, 512, 1.0);
        let a = Spectrum::compute(&s, fs, Window::Hann).unwrap();
        let b = Spectrum::welch(&s, fs, Window::Hann, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn welch_rejects_zero_segments_and_short_signals() {
        assert!(Spectrum::welch(&[1.0; 64], 1.0, Window::Hann, 0).is_err());
        assert!(Spectrum::welch(&[1.0, 2.0], 1.0, Window::Hann, 5).is_err());
    }

    #[test]
    fn bin_of_out_of_range_is_none() {
        let spec = Spectrum::compute(&vec![0.0; 64], 100.0, Window::Rectangular).unwrap();
        assert!(spec.bin_of(-1.0).is_none());
        assert!(spec.bin_of(51.0).is_none());
        assert!(spec.bin_of(25.0).is_some());
    }
}
