//! The fabricated test chip of paper Fig. 3: one AES-128 core plus the
//! four digital Trojans, each with its own trigger control.

use crate::digital::{insert_trojan, TrojanKind, TrojanPorts, ALL_DIGITAL_TROJANS};
use emtrust_aes::netlist::{build_aes, run_encryption, AesPorts};
use emtrust_netlist::graph::Netlist;
use emtrust_netlist::NetlistError;
use emtrust_sim::engine::Simulator;
use std::collections::BTreeMap;

/// An AES-128 core with a selectable set of inserted Trojans, matching the
/// silicon the paper fabricates (AES + four Trojans on one die, plus
/// trigger control pads).
#[derive(Debug)]
pub struct ProtectedChip {
    netlist: Netlist,
    aes: AesPorts,
    trojans: BTreeMap<TrojanKind, TrojanPorts>,
}

impl ProtectedChip {
    /// Builds a chip carrying the given Trojans.
    pub fn with_trojans(kinds: &[TrojanKind]) -> Self {
        let mut netlist = Netlist::new("protected_aes");
        let aes = build_aes(&mut netlist);
        let mut trojans = BTreeMap::new();
        for &kind in kinds {
            trojans.insert(kind, insert_trojan(&mut netlist, &aes, kind));
        }
        Self {
            netlist,
            aes,
            trojans,
        }
    }

    /// Builds the paper's full test chip: all four digital Trojans.
    pub fn with_all_trojans() -> Self {
        Self::with_trojans(&ALL_DIGITAL_TROJANS)
    }

    /// Builds a golden (Trojan-free) chip.
    pub fn golden() -> Self {
        Self::with_trojans(&[])
    }

    /// The combined netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The AES core's ports.
    pub fn aes_ports(&self) -> &AesPorts {
        &self.aes
    }

    /// The ports of an inserted Trojan, if present.
    pub fn trojan_ports(&self, kind: TrojanKind) -> Option<&TrojanPorts> {
        self.trojans.get(&kind)
    }

    /// The Trojans carried by this chip.
    pub fn trojan_kinds(&self) -> impl Iterator<Item = TrojanKind> + '_ {
        self.trojans.keys().copied()
    }

    /// Spawns a simulator over the chip.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from simulator construction.
    pub fn simulator(&self) -> Result<Simulator<'_>, NetlistError> {
        Simulator::new(&self.netlist)
    }

    /// Arms (`true`) or disarms (`false`) a Trojan's trigger on a running
    /// simulator.
    ///
    /// # Panics
    ///
    /// Panics if the chip does not carry `kind`.
    pub fn arm(&self, sim: &mut Simulator<'_>, kind: TrojanKind, on: bool) {
        let ports = self
            .trojans
            .get(&kind)
            .unwrap_or_else(|| panic!("chip does not carry {kind}"));
        sim.set_input(ports.trigger, on);
    }

    /// Disarms every Trojan on the chip.
    pub fn disarm_all(&self, sim: &mut Simulator<'_>) {
        for ports in self.trojans.values() {
            sim.set_input(ports.trigger, false);
        }
    }

    /// Runs one encryption (12 clock edges) and returns the ciphertext.
    pub fn encrypt(&self, sim: &mut Simulator<'_>, key: [u8; 16], pt: [u8; 16]) -> [u8; 16] {
        run_encryption(sim, &self.aes, key, pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_aes::reference::Aes128;
    use emtrust_netlist::stats::module_stats;

    const KEY: [u8; 16] = *b"emtrust-test-key";
    const PT: [u8; 16] = *b"block-under-test";

    #[test]
    fn full_chip_validates() {
        let chip = ProtectedChip::with_all_trojans();
        assert!(chip.netlist().validate().is_ok());
        assert_eq!(chip.trojan_kinds().count(), 4);
    }

    #[test]
    fn golden_chip_has_no_trojan_cells() {
        let chip = ProtectedChip::golden();
        for kind in ALL_DIGITAL_TROJANS {
            assert_eq!(module_stats(chip.netlist(), kind.module_tag()).total, 0);
            assert!(chip.trojan_ports(kind).is_none());
        }
    }

    #[test]
    fn chip_encrypts_correctly_with_any_trigger_combination() {
        let chip = ProtectedChip::with_all_trojans();
        let expect = Aes128::new(KEY).encrypt_block(PT);
        let mut sim = chip.simulator().unwrap();
        // All dormant.
        assert_eq!(chip.encrypt(&mut sim, KEY, PT), expect);
        // Arm everything.
        for kind in ALL_DIGITAL_TROJANS {
            chip.arm(&mut sim, kind, true);
        }
        assert_eq!(chip.encrypt(&mut sim, KEY, PT), expect);
        chip.disarm_all(&mut sim);
        assert_eq!(chip.encrypt(&mut sim, KEY, PT), expect);
    }

    #[test]
    fn arming_one_trojan_raises_only_its_activity() {
        let chip = ProtectedChip::with_all_trojans();
        let mut sim = chip.simulator().unwrap();
        // One unrecorded encryption so every Trojan has absorbed its
        // start-strobe key load; then observe idle cycles.
        let _ = chip.encrypt(&mut sim, KEY, PT);
        chip.arm(&mut sim, TrojanKind::T4PowerDegrader, true);
        sim.step(); // trigger propagates
        sim.start_recording();
        sim.run(10);
        let trace = sim.take_recording();
        let tagged = |prefix: &str| {
            trace
                .cycles()
                .iter()
                .flat_map(|c| c.events())
                .filter(|e| {
                    chip.netlist()
                        .module_path(chip.netlist().cell(e.cell).module())
                        .starts_with(prefix)
                })
                .count()
        };
        assert!(tagged("trojan4") > 1000, "armed trojan must toggle");
        // T2's shift register only moves when its own trigger is up; in
        // idle cycles a dormant Trojan is silent (T1's free-running carrier
        // divider excepted — that is its cover behaviour).
        assert!(tagged("trojan2") < 10, "dormant trojan must stay quiet");
        assert!(tagged("trojan3") < 10, "dormant trojan must stay quiet");
    }

    #[test]
    #[should_panic(expected = "does not carry")]
    fn arming_a_missing_trojan_panics() {
        let chip = ProtectedChip::golden();
        let mut sim = chip.simulator().unwrap();
        chip.arm(&mut sim, TrojanKind::T1AmLeaker, true);
    }

    #[test]
    fn table_one_shape_holds_on_the_combined_chip() {
        let chip = ProtectedChip::with_all_trojans();
        let aes_total = module_stats(chip.netlist(), "aes").total;
        let t3 = module_stats(chip.netlist(), "trojan3").total;
        let t2 = module_stats(chip.netlist(), "trojan2").total;
        let t4 = module_stats(chip.netlist(), "trojan4").total;
        let t1 = module_stats(chip.netlist(), "trojan1").total;
        assert!(t3 < t1 && t1 < t2, "T3 < T1 < T2 ordering");
        // T2 and T4 are both ~8.4 % in the paper.
        let ratio = t2 as f64 / t4 as f64;
        assert!((0.5..=2.0).contains(&ratio));
        assert!(aes_total > 10 * t2, "AES dominates the die");
    }
}
