//! The four digital hardware Trojans as netlist generators.
//!
//! All four follow the paper's threat model: they tap architectural state
//! of the AES core (key bus, `start` strobe), stay dormant until an
//! explicit trigger input rises, and then produce the side effects the
//! detectors must catch. Sizes target the paper's Table-I percentages.

use emtrust_aes::netlist::AesPorts;
use emtrust_netlist::cell::CellKind;
use emtrust_netlist::graph::{NetId, Netlist};

/// The cell kind T1's antenna output stage uses.
pub const PAD_DRIVER_KIND: CellKind = CellKind::PadDriver;

/// Which of the paper's digital Trojans to insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum TrojanKind {
    /// AM-radio key leaker at ≈750 kHz (paper Trojan 1).
    T1AmLeaker,
    /// Leakage-current key leaker (paper Trojan 2).
    T2LeakageLeaker,
    /// CDMA spread-spectrum key leaker (paper Trojan 3).
    T3CdmaLeaker,
    /// Performance degrader: extra flipping registers (paper Trojan 4).
    T4PowerDegrader,
}

/// All four digital Trojans in paper order.
pub const ALL_DIGITAL_TROJANS: [TrojanKind; 4] = [
    TrojanKind::T1AmLeaker,
    TrojanKind::T2LeakageLeaker,
    TrojanKind::T3CdmaLeaker,
    TrojanKind::T4PowerDegrader,
];

impl TrojanKind {
    /// The module tag the Trojan's cells are placed under.
    pub fn module_tag(self) -> &'static str {
        match self {
            TrojanKind::T1AmLeaker => "trojan1",
            TrojanKind::T2LeakageLeaker => "trojan2",
            TrojanKind::T3CdmaLeaker => "trojan3",
            TrojanKind::T4PowerDegrader => "trojan4",
        }
    }

    /// The paper's Table-I size relative to the AES core, in percent.
    pub fn paper_percent(self) -> f64 {
        match self {
            TrojanKind::T1AmLeaker => 5.01,
            TrojanKind::T2LeakageLeaker => 8.44,
            TrojanKind::T3CdmaLeaker => 0.76,
            TrojanKind::T4PowerDegrader => 8.44,
        }
    }

    /// Paper row label (`T1`..`T4`).
    pub fn label(self) -> &'static str {
        match self {
            TrojanKind::T1AmLeaker => "T1",
            TrojanKind::T2LeakageLeaker => "T2",
            TrojanKind::T3CdmaLeaker => "T3",
            TrojanKind::T4PowerDegrader => "T4",
        }
    }
}

impl std::fmt::Display for TrojanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Ports of an inserted digital Trojan.
#[derive(Debug, Clone)]
pub struct TrojanPorts {
    /// The Trojan inserted.
    pub kind: TrojanKind,
    /// External trigger input (paper's "manageable" activation signal).
    pub trigger: NetId,
    /// The covert-channel output net, where the Trojan has one (T1's
    /// modulated antenna node, T3's spread bit).
    pub leak: Option<NetId>,
    /// For T2: the net whose *low* state opens the leakage-current path
    /// between the inverter pair. The power model adds extra leakage while
    /// `leak_sense` is low and `trigger` is high.
    pub leak_sense: Option<NetId>,
}

/// Inserts Trojan `kind` into `netlist`, tapping the AES core at `aes`.
pub fn insert_trojan(netlist: &mut Netlist, aes: &AesPorts, kind: TrojanKind) -> TrojanPorts {
    match kind {
        TrojanKind::T1AmLeaker => insert_t1_am_leaker(netlist, aes),
        TrojanKind::T2LeakageLeaker => insert_t2_leakage_leaker(netlist, aes),
        TrojanKind::T3CdmaLeaker => insert_t3_cdma_leaker(netlist, aes),
        TrojanKind::T4PowerDegrader => insert_t4_power_degrader(netlist, aes),
    }
}

/// A `width`-bit circulating shift register that loads `load_data` while
/// `load` is high, shifts while `shift_en` is high, and holds otherwise.
/// Returns the register outputs (bit 0 is the serial tap).
fn circulating_register(
    netlist: &mut Netlist,
    load: NetId,
    shift_en: NetId,
    load_data: &[NetId],
    width: usize,
) -> Vec<NetId> {
    let mut qs = Vec::with_capacity(width);
    let mut ds = Vec::with_capacity(width);
    for _ in 0..width {
        let (q, d) = netlist.dff_deferred();
        qs.push(q);
        ds.push(d);
    }
    for (i, d) in ds.into_iter().enumerate() {
        let next = qs[(i + 1) % width];
        let shifted = netlist.mux2(qs[i], next, shift_en);
        let loaded = netlist.mux2(shifted, load_data[i % load_data.len()], load);
        netlist.connect_dff_d(d, loaded);
    }
    qs
}

/// A bank of `count` toggle flip-flops that flip every cycle while
/// `enable` is high. Returns the flop outputs.
fn toggle_bank(netlist: &mut Netlist, enable: NetId, count: usize) -> Vec<NetId> {
    (0..count)
        .map(|_| {
            let (q, d) = netlist.dff_deferred();
            let nq = netlist.not(q);
            let toggled = netlist.mux2(q, nq, enable);
            netlist.connect_dff_d(d, toggled);
            q
        })
        .collect()
}

/// **Trojan 1 — AM radio key leaker (≈5 % of the AES core).**
///
/// A divide-by-7 counter toggles a carrier flop (≈714 kHz at the 10 MHz
/// reference clock — the paper's 750 kHz band). A 32-bit key serializer
/// is loaded on `start` and advances one bit per carrier period;
/// `carrier ∧ key_bit ∧ trigger` amplitude-modulates a bank of
/// antenna-driver toggle flops, sized to radiate strongly enough for a
/// radio receiver — the drivers burst at the clock rate under the
/// ≈714 kHz on-off envelope, adding the low-frequency energy of paper
/// Fig. 6 (i).
pub fn insert_t1_am_leaker(netlist: &mut Netlist, aes: &AesPorts) -> TrojanPorts {
    netlist.push_module("trojan1");
    let trigger = netlist.input("trojan1_trigger");

    // Divide-by-7 counter: counts 0..=6, wraps.
    let (c0, d0) = netlist.dff_deferred();
    let (c1, d1) = netlist.dff_deferred();
    let (c2, d2) = netlist.dff_deferred();
    let wrap_raw = netlist.and2(c1, c2); // count == 6 (binary 110)
    let nc0 = netlist.not(c0);
    let wrap = netlist.and2(wrap_raw, nc0);
    let nwrap = netlist.not(wrap);
    // increment with wrap-to-zero.
    let i0 = netlist.not(c0);
    let i1 = netlist.xor2(c1, c0);
    let carry01 = netlist.and2(c0, c1);
    let i2 = netlist.xor2(c2, carry01);
    let n0 = netlist.and2(i0, nwrap);
    let n1 = netlist.and2(i1, nwrap);
    let n2 = netlist.and2(i2, nwrap);
    netlist.connect_dff_d(d0, n0);
    netlist.connect_dff_d(d1, n1);
    netlist.connect_dff_d(d2, n2);

    // Carrier flop toggles on wrap: f = clk / 14.
    let (carrier, dc) = netlist.dff_deferred();
    let ncar = netlist.not(carrier);
    let car_next = netlist.mux2(carrier, ncar, wrap);
    netlist.connect_dff_d(dc, car_next);

    // Key serializer, 32 bits, advances one bit per carrier period. The
    // key is captured once (first `start` strobe) and then cycles
    // continuously so successive bits leak across encryption blocks.
    let (loaded_q, loaded_d) = netlist.dff_deferred();
    let sticky = netlist.or2(loaded_q, aes.start);
    netlist.connect_dff_d(loaded_d, sticky);
    let not_loaded = netlist.not(loaded_q);
    let load_once = netlist.and2(aes.start, not_loaded);
    let sr = circulating_register(netlist, load_once, wrap, &aes.key[..32], 32);
    let key_bit = sr[0];

    // AM modulation and antenna output stage: a toggle bank bursts at
    // clock rate while the carrier is high and the key bit is 1, and pad
    // drivers push the bursts onto the antenna load — that large switched
    // capacitance is what makes T1 loud enough for a radio receiver.
    let armed = netlist.and2(key_bit, trigger);
    let modulated = netlist.and2(carrier, armed);
    let drivers = toggle_bank(netlist, modulated, 110);
    for &q in drivers.iter().take(32) {
        let _ = netlist.gate(crate::digital::PAD_DRIVER_KIND, &[q]);
    }

    netlist.pop_module();
    TrojanPorts {
        kind: TrojanKind::T1AmLeaker,
        trigger,
        leak: Some(modulated),
        leak_sense: None,
    }
}

/// **Trojan 2 — leakage-current key leaker (≈8.4 % of the AES core).**
///
/// A 256-bit circulating shift register captures the key on `start` and,
/// once triggered, shifts every cycle past a two-inverter sensing pair:
/// whenever the register's low bit is 0 a leakage path opens between the
/// PMOS of the first inverter and the NMOS of the second (paper §IV-A).
/// The dynamic shifting dominates the EM signature (Fig. 6 (j)); the
/// leakage itself is injected by the power model via [`TrojanPorts::leak_sense`].
pub fn insert_t2_leakage_leaker(netlist: &mut Netlist, aes: &AesPorts) -> TrojanPorts {
    netlist.push_module("trojan2");
    let trigger = netlist.input("trojan2_trigger");
    let sr = circulating_register(netlist, aes.start, trigger, &aes.key, 256);
    // The inverter pair on the serial tap.
    let inv1 = netlist.not(sr[0]);
    let _inv2 = netlist.not(inv1);
    netlist.pop_module();
    TrojanPorts {
        kind: TrojanKind::T2LeakageLeaker,
        trigger,
        leak: None,
        leak_sense: Some(sr[0]),
    }
}

/// **Trojan 3 — CDMA key leaker (≈0.76 % of the AES core).**
///
/// The smallest and stealthiest Trojan: a compact 8-bit maximal LFSR
/// provides the spreading sequence; an 8-bit key snippet circulates
/// slowly (one bit per 16 cycles); `spread = lfsr₀ ⊕ key_bit` drives a
/// single covert output flop. Most of its area is a *static* capture
/// buffer that latches key material once and then holds — it leaks over
/// "multiple clock cycles to leak a single bit" (paper §IV-A) with
/// minimal switching, which is exactly why Fig. 6 finds it the hardest
/// to see.
pub fn insert_t3_cdma_leaker(netlist: &mut Netlist, aes: &AesPorts) -> TrojanPorts {
    netlist.push_module("trojan3");
    let trigger = netlist.input("trojan3_trigger");

    // Static capture buffer: 8 bits of key latched at start, then held.
    // Near-zero switching after the first load.
    for i in 0..8 {
        let (q, d) = netlist.dff_deferred();
        let held = netlist.mux2(q, aes.key[i], aes.start);
        netlist.connect_dff_d(d, held);
    }

    // 8-bit Fibonacci LFSR, taps 8, 6, 5, 4 (maximal length).
    let mut qs = Vec::with_capacity(8);
    let mut ds = Vec::with_capacity(8);
    for _ in 0..8 {
        let (q, d) = netlist.dff_deferred();
        qs.push(q);
        ds.push(d);
    }
    let t1 = netlist.xor2(qs[7], qs[5]);
    let t2 = netlist.xor2(qs[4], qs[3]);
    let feedback_raw = netlist.xor2(t1, t2);
    // Ensure the LFSR self-starts from the all-zero reset state.
    let any = netlist.or_many(&qs);
    let none = netlist.not(any);
    let feedback = netlist.or2(feedback_raw, none);
    // The spreading sequence re-seeds at every `start` so the covert
    // receiver can synchronize its despreading to the encryption.
    const LFSR_SEED: u8 = 0xa5;
    for (i, d) in ds.into_iter().enumerate() {
        let next = if i == 0 { feedback } else { qs[i - 1] };
        let shifted = netlist.mux2(qs[i], next, trigger);
        let seed_bit = netlist.constant(LFSR_SEED >> i & 1 != 0);
        let seeded = netlist.mux2(shifted, seed_bit, aes.start);
        netlist.connect_dff_d(d, seeded);
    }

    // Slow 4-bit cycle counter: key bit advances when it wraps.
    let mut cq = Vec::with_capacity(4);
    let mut cd = Vec::with_capacity(4);
    for _ in 0..4 {
        let (q, d) = netlist.dff_deferred();
        cq.push(q);
        cd.push(d);
    }
    let c01 = netlist.and2(cq[0], cq[1]);
    let c012 = netlist.and2(c01, cq[2]);
    let wrap = netlist.and2(c012, cq[3]);
    let i0 = netlist.not(cq[0]);
    let i1 = netlist.xor2(cq[1], cq[0]);
    let i2 = netlist.xor2(cq[2], c01);
    let i3 = netlist.xor2(cq[3], c012);
    for (i, d) in cd.into_iter().enumerate() {
        let inc = [i0, i1, i2, i3][i];
        let nxt = netlist.mux2(cq[i], inc, trigger);
        // Counter also re-synchronizes at `start`.
        let cleared = netlist.mux2(nxt, netlist.const0(), aes.start);
        netlist.connect_dff_d(d, cleared);
    }

    // 8-bit key snippet, one bit per counter wrap.
    let snippet = circulating_register(netlist, aes.start, wrap, &aes.key[..8], 8);

    // Spread and emit through a ganged output pad stage (the covert
    // CDMA channel leaves the chip; the channel needs drive strength to
    // survive the off-chip link, and those four ganged pads toggling
    // at chip rate are the Trojan's only significant radiators — hence
    // its tiny signature).
    let spread_raw = netlist.xor2(qs[0], snippet[0]);
    let spread = netlist.and2(spread_raw, trigger);
    let (leak_q, leak_d) = netlist.dff_deferred();
    netlist.connect_dff_d(leak_d, spread);
    for _ in 0..4 {
        let _ = netlist.gate(PAD_DRIVER_KIND, &[leak_q]);
    }

    netlist.pop_module();
    TrojanPorts {
        kind: TrojanKind::T3CdmaLeaker,
        trigger,
        leak: Some(leak_q),
        leak_sense: None,
    }
}

/// **Trojan 4 — performance degrader (≈8.4 % of the AES core).**
///
/// A bank of toggle registers that all flip every cycle once triggered,
/// "increasing the power consumption by introducing more flipping
/// registers after activation" (paper §IV-A). Purely parasitic — no
/// covert channel, only the side-channel footprint.
pub fn insert_t4_power_degrader(netlist: &mut Netlist, aes: &AesPorts) -> TrojanPorts {
    let _ = aes; // taps nothing — pure payload
    netlist.push_module("trojan4");
    let trigger = netlist.input("trojan4_trigger");
    let _bank = toggle_bank(netlist, trigger, 284);
    netlist.pop_module();
    TrojanPorts {
        kind: TrojanKind::T4PowerDegrader,
        trigger,
        leak: None,
        leak_sense: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_aes::netlist::{build_aes, run_encryption};
    use emtrust_aes::reference::Aes128;
    use emtrust_netlist::stats::module_stats;
    use emtrust_sim::engine::Simulator;

    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    const PT: [u8; 16] = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];

    fn chip_with(kind: TrojanKind) -> (emtrust_netlist::graph::Netlist, AesPorts, TrojanPorts) {
        let mut n = emtrust_netlist::graph::Netlist::new("chip");
        let aes = build_aes(&mut n);
        let ports = insert_trojan(&mut n, &aes, kind);
        (n, aes, ports)
    }

    #[test]
    fn all_trojans_validate_and_match_paper_sizes() {
        for kind in ALL_DIGITAL_TROJANS {
            let (n, _, _) = chip_with(kind);
            assert!(n.validate().is_ok(), "{kind} netlist invalid");
            let aes_count = module_stats(&n, "aes").total as f64;
            let trojan_count = module_stats(&n, kind.module_tag()).total as f64;
            let pct = 100.0 * trojan_count / aes_count;
            let target = kind.paper_percent();
            assert!(
                (pct - target).abs() / target < 0.45,
                "{kind}: {pct:.2}% vs paper {target}%"
            );
        }
    }

    #[test]
    fn dormant_trojans_do_not_corrupt_encryption() {
        for kind in ALL_DIGITAL_TROJANS {
            let (n, aes, _) = chip_with(kind);
            let mut sim = Simulator::new(&n).unwrap();
            let ct = run_encryption(&mut sim, &aes, KEY, PT);
            assert_eq!(ct, Aes128::new(KEY).encrypt_block(PT), "{kind}");
        }
    }

    #[test]
    fn triggered_trojans_do_not_corrupt_encryption() {
        // These Trojans leak — they never alter the ciphertext.
        for kind in ALL_DIGITAL_TROJANS {
            let (n, aes, t) = chip_with(kind);
            let mut sim = Simulator::new(&n).unwrap();
            sim.set_input(t.trigger, true);
            let ct = run_encryption(&mut sim, &aes, KEY, PT);
            assert_eq!(ct, Aes128::new(KEY).encrypt_block(PT), "{kind}");
        }
    }

    #[test]
    fn trojans_are_quiet_until_triggered() {
        for kind in [TrojanKind::T1AmLeaker, TrojanKind::T4PowerDegrader] {
            let (n, aes, t) = chip_with(kind);
            let mut sim = Simulator::new(&n).unwrap();
            // Dormant: run a block, count trojan toggles.
            sim.start_recording();
            let _ = run_encryption(&mut sim, &aes, KEY, PT);
            let dormant = sim.take_recording();
            // Triggered.
            sim.set_input(t.trigger, true);
            sim.start_recording();
            let _ = run_encryption(&mut sim, &aes, KEY, PT);
            let active = sim.take_recording();
            let count_trojan = |trace: &emtrust_sim::ActivityTrace| {
                trace
                    .cycles()
                    .iter()
                    .flat_map(|c| c.events())
                    .filter(|e| {
                        n.module_path(n.cell(e.cell).module())
                            .starts_with(kind.module_tag())
                    })
                    .count()
            };
            let quiet = count_trojan(&dormant);
            let loud = count_trojan(&active);
            assert!(loud > quiet + 50, "{kind}: dormant={quiet}, active={loud}");
        }
    }

    #[test]
    fn t4_bank_toggles_every_cycle_when_armed() {
        let (n, _aes, t) = chip_with(TrojanKind::T4PowerDegrader);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(t.trigger, true);
        sim.step(); // trigger propagates
        sim.start_recording();
        sim.step();
        sim.step();
        let trace = sim.take_recording();
        for cycle in trace.cycles() {
            let t4_flops = cycle
                .events()
                .iter()
                .filter(|e| {
                    e.level == 0
                        && n.module_path(n.cell(e.cell).module())
                            .starts_with("trojan4")
                })
                .count();
            assert_eq!(t4_flops, 284, "all bank flops must flip each cycle");
        }
    }

    #[test]
    fn t1_carrier_divides_the_clock() {
        let (n, _aes, t) = chip_with(TrojanKind::T1AmLeaker);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(t.trigger, true);
        // Find the carrier: the modulated leak output follows carrier when
        // key bit is 1; easier to just verify the leak net toggles with a
        // period of 14 cycles once the key register holds ones.
        // Load an all-ones key.
        let (aes_ports,) = (_aes,);
        sim.set_bus(&aes_ports.key, u128::MAX);
        sim.set_input(aes_ports.start, true);
        sim.step();
        sim.set_input(aes_ports.start, false);
        let leak = t.leak.expect("t1 exposes its modulated node");
        let mut transitions = 0;
        let mut last = sim.value(leak);
        for _ in 0..140 {
            sim.step();
            let v = sim.value(leak);
            if v != last {
                transitions += 1;
                last = v;
            }
        }
        // Carrier period 14 cycles -> 10 full periods in 140 cycles ->
        // 20 transitions when fully modulated.
        assert!(
            (16..=24).contains(&transitions),
            "modulated node transitions: {transitions}"
        );
    }

    #[test]
    fn t3_lfsr_produces_a_balanced_spread_sequence() {
        let (n, _aes, t) = chip_with(TrojanKind::T3CdmaLeaker);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(t.trigger, true);
        let leak = t.leak.unwrap();
        let mut ones = 0;
        let total = 512;
        for _ in 0..total {
            sim.step();
            ones += u32::from(sim.value(leak));
        }
        // A maximal LFSR sequence is balanced; allow wide tolerance.
        assert!(
            (150..=360).contains(&ones),
            "spread sequence unbalanced: {ones}/{total}"
        );
    }

    #[test]
    fn t2_exposes_its_leakage_sense_net() {
        let (n, aes, t) = chip_with(TrojanKind::T2LeakageLeaker);
        let sense = t.leak_sense.expect("t2 has a leakage sense net");
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(t.trigger, true);
        // Load the key, then observe the sense net vary as bits circulate.
        sim.set_bus(&aes.key, emtrust_aes::netlist::block_to_word(KEY));
        sim.set_input(aes.start, true);
        sim.step();
        sim.set_input(aes.start, false);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..300 {
            sim.step();
            if sim.value(sense) {
                seen_high = true;
            } else {
                seen_low = true;
            }
        }
        assert!(seen_low && seen_high, "sense net must track key bits");
    }

    #[test]
    fn trojan_metadata_is_consistent() {
        for kind in ALL_DIGITAL_TROJANS {
            assert!(kind.paper_percent() > 0.0);
            assert!(kind.module_tag().starts_with("trojan"));
            assert_eq!(format!("{kind}"), kind.label());
        }
    }
}
