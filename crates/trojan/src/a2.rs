//! Behavioural model of an A2-style analog Trojan.
//!
//! A2 (Yang et al., S&P 2016) is a six-transistor charge-pump Trojan: a
//! *fast-flipping* digital trigger wire pumps a capacitor; when enough
//! charge accumulates the payload fires. The paper detects A2 **through
//! the spectral line of its fast-flipping trigger** (§III-E, Fig. 4): the
//! toggling injects current spikes at the toggle frequency, which either
//! boosts an existing spectral spot (`T = g`) or adds a new one (`T ≠ g`).
//!
//! Because A2 is analog (and the paper itself only *simulates* it — its
//! fabrication is listed as future work), the model here is a current
//! source: a spike train at the trigger's toggle frequency, placed at a
//! die location, that the measurement pipeline adds to the aggregate
//! current before EM synthesis.

/// A behavioural A2-style analog Trojan.
#[derive(Debug, Clone, PartialEq)]
pub struct A2Trojan {
    /// Toggle frequency of the trigger wire, in hertz. The paper drives it
    /// from an on-chip clock-division signal.
    toggle_freq_hz: f64,
    /// Charge moved per toggle, in coulombs.
    charge_per_toggle_c: f64,
    /// Die location of the Trojan, in micrometres.
    location_um: (f64, f64),
    /// Whether the trigger wire is currently flipping.
    triggering: bool,
}

impl A2Trojan {
    /// Equivalent area in µm² — six minimum transistors in 180 nm
    /// (paper Table I lists A2 at 0.087 % of the AES area).
    pub const AREA_UM2: f64 = 18.0;

    /// Number of transistors in the paper's A2 instance.
    pub const TRANSISTOR_COUNT: usize = 6;

    /// Creates the model for a chip clocked at `clock_hz`, with the
    /// trigger toggling at half the clock (a clock-division signal, the
    /// paper's `T = g`-adjacent case). The per-toggle charge covers the
    /// pump plus the full global trigger wire it flips (≈0.8 pF at
    /// 1.8 V) — it is that wire's radiation the spectral detector keys on.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn new(clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock frequency must be positive");
        Self {
            toggle_freq_hz: clock_hz / 2.0,
            charge_per_toggle_c: 1.5e-12,
            location_um: (0.0, 0.0),
            triggering: false,
        }
    }

    /// Sets the trigger-wire toggle frequency (hertz).
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not positive.
    pub fn with_toggle_freq(mut self, freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "toggle frequency must be positive");
        self.toggle_freq_hz = freq_hz;
        self
    }

    /// Sets the charge moved per toggle (coulombs).
    pub fn with_charge_per_toggle(mut self, charge_c: f64) -> Self {
        self.charge_per_toggle_c = charge_c;
        self
    }

    /// Places the Trojan on the die (micrometres).
    pub fn with_location(mut self, x_um: f64, y_um: f64) -> Self {
        self.location_um = (x_um, y_um);
        self
    }

    /// Arms or disarms the trigger wire.
    pub fn set_triggering(&mut self, on: bool) {
        self.triggering = on;
    }

    /// Whether the trigger wire is flipping.
    pub fn is_triggering(&self) -> bool {
        self.triggering
    }

    /// The trigger toggle frequency in hertz.
    pub fn toggle_freq_hz(&self) -> f64 {
        self.toggle_freq_hz
    }

    /// The die location in micrometres.
    pub fn location_um(&self) -> (f64, f64) {
        self.location_um
    }

    /// Synthesizes the Trojan's current contribution: `n` samples at
    /// `sample_rate_hz`. Returns all zeros while not triggering.
    ///
    /// Every edge of the trigger wire moves the charge `Q` with a
    /// nanosecond-class rise time, modelled as a two-sample triangular
    /// current pulse of alternating polarity. The resulting spectrum is a
    /// comb at odd harmonics of the toggle frequency — the "activation
    /// peak(s)" of paper Fig. 4 — with a gentle roll-off set by the edge
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive.
    pub fn current_samples(&self, n: usize, sample_rate_hz: f64) -> Vec<f64> {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let mut out = vec![0.0; n];
        if !self.triggering || n == 0 {
            return out;
        }
        let period_samples = sample_rate_hz / self.toggle_freq_hz;
        // Charge Q spread 2/3 + 1/3 over two samples (finite edge).
        let peak = self.charge_per_toggle_c * sample_rate_hz;
        let mut t = 0.0;
        let mut sign = 1.0;
        while t < n as f64 {
            let idx = t as usize;
            if idx < n {
                out[idx] += sign * peak * (2.0 / 3.0);
            }
            if idx + 1 < n {
                out[idx + 1] += sign * peak * (1.0 / 3.0);
            }
            sign = -sign;
            t += period_samples / 2.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_trojan_injects_nothing() {
        let a2 = A2Trojan::new(10e6);
        let s = a2.current_samples(1024, 640e6);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn triggering_trojan_injects_edge_pulses() {
        let mut a2 = A2Trojan::new(10e6); // toggles at 5 MHz
        a2.set_triggering(true);
        let fs = 640e6;
        let s = a2.current_samples(4096, fs);
        let nonzero = s.iter().filter(|&&x| x != 0.0).count();
        // 6.4 µs -> 32 toggle periods -> 64 edges, two samples each.
        assert!((120..=136).contains(&nonzero), "pulse samples: {nonzero}");
        // Each edge carries charge Q.
        let q_per_edge = s.iter().map(|x| x.abs()).sum::<f64>() / fs / 64.0;
        assert!(
            (q_per_edge - 1.5e-12).abs() < 0.1e-12,
            "Q = {q_per_edge:.2e}"
        );
    }

    #[test]
    fn spectrum_peak_lands_at_toggle_frequency() {
        use emtrust_dsp::spectrum::Spectrum;
        use emtrust_dsp::window::Window;
        let mut a2 = A2Trojan::new(10e6).with_toggle_freq(25e6);
        a2.set_triggering(true);
        let fs = 640e6;
        let s = a2.current_samples(8192, fs);
        let spec = Spectrum::compute(&s, fs, Window::Hann).unwrap();
        let peak = spec.dominant_peak().unwrap();
        assert!(
            (peak.frequency_hz - 25e6).abs() < 2.0 * spec.resolution_hz(),
            "peak at {} Hz",
            peak.frequency_hz
        );
    }

    #[test]
    fn builder_setters_apply() {
        let a2 = A2Trojan::new(10e6)
            .with_toggle_freq(7e6)
            .with_charge_per_toggle(50e-15)
            .with_location(100.0, 200.0);
        assert_eq!(a2.toggle_freq_hz(), 7e6);
        assert_eq!(a2.location_um(), (100.0, 200.0));
        assert!(!a2.is_triggering());
    }

    #[test]
    fn arming_is_reversible() {
        let mut a2 = A2Trojan::new(1e6);
        a2.set_triggering(true);
        assert!(a2.is_triggering());
        a2.set_triggering(false);
        assert!(a2.current_samples(64, 1e9).iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_is_rejected() {
        let _ = A2Trojan::new(0.0);
    }

    #[test]
    fn injected_charge_alternates_sign() {
        let mut a2 = A2Trojan::new(10e6);
        a2.set_triggering(true);
        let s = a2.current_samples(2048, 640e6);
        let sum: f64 = s.iter().sum();
        let energy: f64 = s.iter().map(|x| x * x).sum();
        assert!(energy > 0.0);
        // Alternating impulses largely cancel in the mean.
        assert!(sum.abs() < energy.sqrt());
    }
}
