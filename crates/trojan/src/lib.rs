//! # emtrust-trojan
//!
//! The hardware Trojan benchmarks of the DAC 2020 on-chip EM sensor paper
//! (§IV-A), as netlist generators plus an analog model:
//!
//! | Trojan | Paper behaviour | Our implementation |
//! |---|---|---|
//! | **T1** | Leaks the secret over an AM radio carrier at ≈750 kHz | Clock-division carrier, key shift register, AM-gated toggle-driver bank ([`digital::insert_t1_am_leaker`]) |
//! | **T2** | Leaks via leakage current from a shift register + two inverters | 256-bit circulating key shift register with a leakage-inverter pair; dynamic shifting plus a leakage hook for the power model ([`digital::insert_t2_leakage_leaker`]) |
//! | **T3** | Leaks one bit over many cycles through a CDMA channel (PRNG spreading) | 16-bit LFSR spreader XORed with a serialized key snippet ([`digital::insert_t3_cdma_leaker`]) |
//! | **T4** | Degrades performance by flipping extra registers | Trigger-enabled toggle-register bank ([`digital::insert_t4_power_degrader`]) |
//! | **A2** | Analog charge-pump Trojan (6 transistors) with a fast-flipping trigger | Behavioural current-injection model ([`a2::A2Trojan`]) |
//!
//! Each digital Trojan carries the paper's *explicit external trigger*
//! ("we design an extra triggering signal for each Trojan to activate the
//! payload in a more manageable way") and is sized to the paper's Table-I
//! relative overhead (≈5 %, ≈8.4 %, ≈0.76 %, ≈8.4 % of the AES core).
//!
//! [`chip::ProtectedChip`] assembles the fabricated die of paper Fig. 3:
//! one AES-128 core plus all four digital Trojans with individual trigger
//! control.

pub mod a2;
pub mod chip;
pub mod digital;

pub use a2::A2Trojan;
pub use chip::ProtectedChip;
pub use digital::{TrojanKind, TrojanPorts};
