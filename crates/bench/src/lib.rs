#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-bench
//!
//! Experiment harnesses and Criterion benchmarks regenerating **every
//! table and figure** of the DAC 2020 paper. Each `exp_*` binary prints
//! the rows/series the paper reports, next to the paper's published
//! values where it gives any:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_table1` | Table I — Trojan sizes vs. the AES design |
//! | `exp_snr_sim` | §IV-B — simulated on-chip vs. external SNR |
//! | `exp_distances_sim` | §IV-C — Euclidean distances ref ↔ T1..T4 |
//! | `exp_a2_spectrum` | Fig. 4 — A2 activation peak in the spectrum |
//! | `exp_snr_silicon` | §V-A — measured SNR on the fabricated chip |
//! | `exp_fig6_histograms` | Fig. 6 (a)–(h) — distance histograms per probe |
//! | `exp_fig6_spectra` | Fig. 6 (i)–(l) — on-chip sensor spectra per Trojan |
//! | `exp_layout` | Fig. 2/3 — sensor, probe and protected-layout geometry |
//!
//! The Criterion benches (`cargo bench`) measure the cost of each
//! pipeline stage and run the ablations DESIGN.md calls out (PCA on/off,
//! coil turns, probe standoff, acquisition rate).
//!
//! Every `exp_*` binary accepts `--json` and `--quiet` (see [`report`]);
//! `exp_telemetry` replays the Table-1 sweep under the telemetry
//! recorder and writes `BENCH_telemetry.json`, whose schema
//! `check_bench_schema` validates in CI using the dependency-free
//! [`json`] parser.

pub mod attribution;
pub mod json;
pub mod report;

pub use report::{
    git_rev, unix_timestamp, write_artifact, write_jsonl, ArtifactDoc, OrExit, OutputMode, Report,
};

use emtrust::acquisition::TestBench;
use emtrust::TrustError;
use emtrust_dsp::histogram::Histogram;
use emtrust_em::emf::VoltageTrace;
use emtrust_em::snr::{snr_report, SnrReport};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

/// The fixed AES key every experiment uses (arbitrary but stable).
pub const EXPERIMENT_KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// Number of encryption blocks in a continuous monitoring window — long
/// enough for sub-100 kHz spectral resolution at the reference clock.
pub const SPECTRAL_BLOCKS: usize = 96;

/// All four digital Trojans, in paper order.
pub const TROJANS: [TrojanKind; 4] = [
    TrojanKind::T1AmLeaker,
    TrojanKind::T2LeakageLeaker,
    TrojanKind::T3CdmaLeaker,
    TrojanKind::T4PowerDegrader,
];

/// Runs the paper's §V-A two-step SNR protocol on a bench: collect noise
/// with the chip idle, then signal with encryptions running.
///
/// # Errors
///
/// Propagates acquisition errors.
pub fn measure_snr(
    bench: &TestBench<'_>,
    channel: Channel,
    blocks: usize,
    seed: u64,
) -> Result<SnrReport, TrustError> {
    let signal = bench.collect_continuous(EXPERIMENT_KEY, blocks, None, channel, seed)?;
    let noise = bench.collect_noise(signal.len(), channel, seed ^ 0xF00D);
    Ok(snr_report(&signal, &noise))
}

/// Prints a two-column table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Renders a histogram as an ASCII bar series (the Fig. 6 panel format).
pub fn print_histogram(label: &str, histogram: &Histogram, max_width: usize) {
    let peak = histogram.counts().iter().copied().max().unwrap_or(0).max(1);
    println!("  {label}:");
    for (i, &c) in histogram.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = "#".repeat((c as usize * max_width).div_ceil(peak as usize));
        println!(
            "    {:>8.4} | {:<width$} {}",
            histogram.bin_center(i),
            bar,
            c,
            width = max_width
        );
    }
}

/// Prints a spectrum as `(frequency, magnitude)` series limited to
/// `max_hz`, downsampled to at most `max_rows` rows (peak-preserving).
pub fn print_spectrum_series(
    label: &str,
    trace: &VoltageTrace,
    max_hz: f64,
    max_rows: usize,
) -> Result<(), TrustError> {
    use emtrust_dsp::spectrum::Spectrum;
    use emtrust_dsp::window::Window;
    let spec = Spectrum::welch(trace.samples(), trace.sample_rate_hz(), Window::Hann, 4)?;
    let in_range: Vec<(f64, f64)> = spec
        .freqs_hz()
        .iter()
        .zip(spec.magnitudes())
        .filter(|(f, _)| **f <= max_hz)
        .map(|(f, m)| (*f, *m))
        .collect();
    let chunk = in_range.len().div_ceil(max_rows.max(1)).max(1);
    println!("  {label} (bin peak per {chunk} bins):");
    for group in in_range.chunks(chunk) {
        let (f, m) = group.iter().fold(
            (0.0, 0.0),
            |acc, &(f, m)| if m > acc.1 { (f, m) } else { acc },
        );
        println!("    {:>12.0} Hz  {:.4e} V", f, m);
    }
    Ok(())
}

/// Builds the standard chip-under-test for experiments needing Trojans.
pub fn standard_chip() -> ProtectedChip {
    ProtectedChip::with_all_trojans()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_protocol_runs_on_a_small_workload() {
        let chip = ProtectedChip::golden();
        let bench = TestBench::simulation(&chip).unwrap();
        let report = measure_snr(&bench, Channel::OnChipSensor, 2, 1).unwrap();
        assert!(report.snr_db > 10.0, "on-chip SNR {:.2} dB", report.snr_db);
    }

    #[test]
    fn table_printer_handles_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }

    #[test]
    fn histogram_printer_runs() {
        let h = Histogram::from_values(&[0.1, 0.2, 0.2, 0.9], 0.0, 1.0, 10).unwrap();
        print_histogram("demo", &h, 20);
    }

    #[test]
    fn spectrum_printer_runs() {
        let t = VoltageTrace::new(
            (0..4096)
                .map(|i| (2.0 * std::f64::consts::PI * 10e6 * i as f64 / 640e6).sin())
                .collect(),
            640e6,
        );
        print_spectrum_series("demo", &t, 50e6, 16).unwrap();
    }
}
