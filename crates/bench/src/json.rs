//! A minimal JSON value model and recursive-descent parser.
//!
//! The offline toolchain has no serde, but the bench artifacts
//! (`BENCH_*.json`) need schema validation in CI — `check_bench_schema`
//! parses them with this module. The grammar is full RFC 8259 minus
//! nothing the artifacts use: objects, arrays, strings (with `\uXXXX`
//! escapes and surrogate pairs), numbers, booleans and null.

use std::fmt;

/// A parsed JSON value. Object keys keep file order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in file order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses `text` as a single JSON document (trailing garbage is an
    /// error).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the byte offset of the first
    /// violation.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the first offending character.
    pub offset: usize,
    /// What the parser expected.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

// The workspace's top-level `emtrust::Error` carries bench failures as a
// rendered message (core does not depend on this crate), so the
// conversion lives here, on the side that owns `ParseError`.
impl From<ParseError> for emtrust::Error {
    fn from(e: ParseError) -> Self {
        emtrust::Error::Bench(e.to_string())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.error("truncated"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_shape() {
        let v = Value::parse(
            r#"{"benchmark": "x", "n": 3, "results": [{"workers": 1, "seconds": 0.5}], "ok": true, "none": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        let results = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("seconds").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Value::parse(r#""a\n\"b\" \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\" é 😀"));
    }

    #[test]
    fn parses_number_forms() {
        for (text, want) in [
            ("-0.5", -0.5),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("0", 0.0),
        ] {
            assert_eq!(Value::parse(text).unwrap().as_f64(), Some(want));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"\\x\"",
            "1 2",
            "\"unterminated",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn errors_carry_an_offset() {
        let err = Value::parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_errors_lift_into_the_workspace_error() {
        fn parse(text: &str) -> Result<Value, emtrust::Error> {
            Ok(Value::parse(text)?)
        }
        let err = parse("{oops").unwrap_err();
        assert!(matches!(&err, emtrust::Error::Bench(m) if m.contains("json parse error")));
        assert!(err.to_string().starts_with("bench:"));
    }
}
