//! Leave-one-Trojan-out (LOTO) evaluation of register-level
//! attribution.
//!
//! The scan-chain exemplars score per-register suspicion vectors with
//! Precision@k / Recall@k / AUROC / IoU under a leave-one-design-out
//! protocol, so the classifier is never graded on a Trojan it saw in
//! training. This module is the `emtrust` counterpart over the four
//! paper Trojans:
//!
//! 1. attribute each Trojan's campaign at cell granularity
//!    ([`emtrust::array::SensorArray::attribute`] with
//!    [`CellEvidence`](emtrust::attribution::CellEvidence)), keeping
//!    the raw per-cell feature vectors;
//! 2. for each held-out Trojan, train a
//!    [`LogisticModel`] on the *other three* Trojans' labeled cells
//!    (label = "belongs to that Trojan's placement module") with
//!    class-balanced descent — a Trojan's cells are a sliver of the
//!    die;
//! 3. re-rank the held-out attribution by the model's probability and
//!    score the ranking.
//!
//! Training is seeded and free of randomness (see
//! [`emtrust::learned`]), so every fold — and hence the whole
//! `BENCH_localization.json` attribution section — is bit-identical
//! across runs and worker counts.

use emtrust::attribution::Attribution;
use emtrust::learned::{LogisticModel, TrainSpec};
use emtrust::telemetry::sink::{json_escape, json_number};
use emtrust::TrustError;
use emtrust_trojan::TrojanKind;

/// Ranking depths reported per fold.
pub const PRECISION_K: usize = 10;
/// The deeper operating point (Precision@k and Recall@k).
pub const RECALL_K: usize = 50;

/// One Trojan's attributed campaign, labeled with its ground truth:
/// a cell is truly Trojan iff its placement region is the armed
/// Trojan's module tag.
#[derive(Debug, Clone)]
pub struct LabeledAttribution {
    /// The armed Trojan.
    pub kind: TrojanKind,
    /// The campaign's cell-level attribution.
    pub attribution: Attribution,
}

impl LabeledAttribution {
    /// The placement-region tag that marks a cell as truly Trojan.
    pub fn truth_tag(&self) -> &'static str {
        self.kind.module_tag()
    }

    /// Number of truly-Trojan cells.
    pub fn true_cells(&self) -> usize {
        let tag = self.truth_tag();
        self.attribution.cells().filter(|c| c.region == tag).count()
    }

    /// The labeled training rows: one `(features, is_trojan)` pair per
    /// cell.
    fn rows(&self) -> impl Iterator<Item = (Vec<f64>, bool)> + '_ {
        let tag = self.truth_tag();
        self.attribution
            .cells()
            .map(move |c| (c.features.to_vec(), c.region == tag))
    }
}

/// Rank metrics of one held-out fold.
#[derive(Debug, Clone)]
pub struct FoldMetrics {
    /// The held-out Trojan the model never trained on.
    pub kind: TrojanKind,
    /// Cells in the held-out attribution.
    pub cells: usize,
    /// Truly-Trojan cells among them.
    pub true_cells: usize,
    /// Precision@[`PRECISION_K`] of the learned ranking.
    pub precision_at_10: f64,
    /// Precision@[`RECALL_K`].
    pub precision_at_50: f64,
    /// Recall@[`RECALL_K`].
    pub recall_at_50: f64,
    /// AUROC of the learned suspicion scores (0 when undefined —
    /// never the case with both classes placed).
    pub auroc: f64,
    /// IoU of the top-`|truth|` cells against the truth set.
    pub iou: f64,
    /// The held-out attribution re-ranked by the fold's model (for
    /// top-k export).
    pub ranked: Attribution,
}

impl FoldMetrics {
    /// The fold as a pre-rendered JSON object for the
    /// `BENCH_localization.json` attribution section.
    pub fn to_json(&self) -> String {
        format!(
            "    {{\"trojan\": \"{:?}\", \"region\": \"{}\", \"cells\": {}, \
             \"true_cells\": {}, \"precision_at_10\": {}, \"precision_at_50\": {}, \
             \"recall_at_50\": {}, \"auroc\": {}, \"iou\": {}}}",
            self.kind,
            json_escape(self.kind.module_tag()),
            self.cells,
            self.true_cells,
            json_number(self.precision_at_10),
            json_number(self.precision_at_50),
            json_number(self.recall_at_50),
            json_number(self.auroc),
            json_number(self.iou),
        )
    }

    /// JSONL records of the fold's top-`k` ranked cells (one object per
    /// line, for `report::write_jsonl`).
    pub fn top_cells_jsonl(&self, k: usize) -> Vec<String> {
        let tag = self.kind.module_tag();
        self.ranked
            .top_cells(k)
            .iter()
            .enumerate()
            .map(|(rank, c)| {
                format!(
                    "{{\"held_out\": \"{:?}\", \"rank\": {}, \"cell\": {}, \
                     \"kind\": \"{:?}\", \"module\": \"{}\", \"region\": \"{}\", \
                     \"is_trojan\": {}, \"suspicion\": {}, \"x_um\": {}, \"y_um\": {}}}",
                    self.kind,
                    rank + 1,
                    c.cell.index(),
                    c.kind,
                    json_escape(&c.module),
                    json_escape(&c.region),
                    c.region == tag,
                    json_number(c.suspicion),
                    json_number(c.location_um.0),
                    json_number(c.location_um.1),
                )
            })
            .collect()
    }
}

/// The gradient-descent spec every LOTO fold trains with:
/// class-balanced (positives are rare), defaults otherwise — and, like
/// all [`LogisticModel`] training, fully deterministic.
pub fn loto_train_spec() -> TrainSpec {
    TrainSpec {
        balance: true,
        ..TrainSpec::default()
    }
}

/// Runs the full leave-one-Trojan-out protocol: one fold per labeled
/// attribution, each trained on all the others.
///
/// # Errors
///
/// [`TrustError::InvalidParameter`] below two folds or when a fold's
/// training set degenerates (no cells, single class); forwarded
/// training errors otherwise.
pub fn leave_one_out(folds: &[LabeledAttribution]) -> Result<Vec<FoldMetrics>, TrustError> {
    if folds.len() < 2 {
        return Err(TrustError::InvalidParameter {
            what: "leave-one-out needs at least two labeled attributions",
        });
    }
    let spec = loto_train_spec();
    let mut out = Vec::with_capacity(folds.len());
    for (h, held) in folds.iter().enumerate() {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (k, fold) in folds.iter().enumerate() {
            if k == h {
                continue;
            }
            for (row, label) in fold.rows() {
                features.push(row);
                labels.push(label);
            }
        }
        let model = LogisticModel::train(&features, &labels, spec)?;
        let mut ranked = held.attribution.clone();
        ranked.rescore_cells(|c| model.predict(&c.features.to_vec()).unwrap_or(0.0));
        let tag = held.truth_tag();
        let truth = |c: &emtrust::attribution::CellScore| c.region == tag;
        out.push(FoldMetrics {
            kind: held.kind,
            cells: ranked.cell_scores().len(),
            true_cells: held.true_cells(),
            precision_at_10: ranked.precision_at(PRECISION_K, truth),
            precision_at_50: ranked.precision_at(RECALL_K, truth),
            recall_at_50: ranked.recall_at(RECALL_K, truth),
            auroc: ranked.auroc(truth).unwrap_or(0.0),
            iou: ranked.iou(truth),
            ranked,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leave_one_out_rejects_degenerate_inputs() {
        assert!(leave_one_out(&[]).is_err());
    }
}
