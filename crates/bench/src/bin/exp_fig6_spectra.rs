#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E7 — Figure 6 (i)–(l)**: on-chip sensor spectra of the fabricated
//! chip with each Trojan activated vs. the original circuit.
//!
//! Paper findings reproduced here: T1 adds low-frequency energy (its
//! ≈750 kHz AM carrier), T2 and T4 raise many spots (T4 ≥ T2, both are
//! register banks), T3's spots are not clearly distinguishable.

use emtrust::acquisition::TestBench;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust_bench::OrExit;
use emtrust_bench::{
    print_spectrum_series, standard_chip, Report, EXPERIMENT_KEY, SPECTRAL_BLOCKS,
};
use emtrust_dsp::spectrum::Spectrum;
use emtrust_dsp::window::Window;
use emtrust_silicon::Channel;

fn main() {
    let mut report = Report::from_env("exp_fig6_spectra");
    let chip = standard_chip();
    let bench = TestBench::silicon(&chip, 1).or_exit("silicon bench");

    let golden = bench
        .collect_continuous(
            EXPERIMENT_KEY,
            SPECTRAL_BLOCKS,
            None,
            Channel::OnChipSensor,
            0x6C,
        )
        .or_exit("golden window");
    let detector = SpectralDetector::fit(&golden, SpectralConfig::default()).or_exit("detector");

    if report.is_text() {
        println!("== E7 — on-chip sensor spectra (paper Fig. 6 i-l) ==");
        print_spectrum_series("original circuit (red)", &golden, 40e6, 20).or_exit("golden series");
    }

    let band_energy = |trace: &emtrust_em::emf::VoltageTrace, lo: f64, hi: f64| -> f64 {
        Spectrum::welch(trace.samples(), trace.sample_rate_hz(), Window::Hann, 4)
            .map(|s| s.band_energy(lo, hi))
            .unwrap_or(0.0)
    };
    // T1's ≈714 kHz AM envelope shows up both directly at low frequency
    // and as sidebands around the clock line (10 MHz ± n·714 kHz); the
    // 9.2–9.4 MHz window isolates the first lower sideband away from the
    // block-rate comb (833 kHz spacing).
    let golden_low = band_energy(&golden, 9.2e6, 9.4e6);

    let mut rows = Vec::new();
    for kind in emtrust_bench::TROJANS {
        let armed = bench
            .collect_continuous(
                EXPERIMENT_KEY,
                SPECTRAL_BLOCKS,
                Some(kind),
                Channel::OnChipSensor,
                0x6C,
            )
            .or_exit("armed window");
        if report.is_text() {
            println!("\n-- panel: {} activated (blue) --", kind.label());
            print_spectrum_series("trojan activated", &armed, 40e6, 20).or_exit("armed series");
        }
        let anomalies = detector.compare(&armed).or_exit("compare");
        let low = band_energy(&armed, 9.2e6, 9.4e6);
        report.scalar(
            &format!("{}_anomalous_spots", kind.label().to_lowercase()),
            anomalies.len() as f64,
        );
        rows.push(vec![
            kind.label().to_string(),
            anomalies.len().to_string(),
            anomalies
                .first()
                .map(|a| format!("{:.2} MHz", a.frequency_hz / 1e6))
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.2}x", low / golden_low.max(1e-300)),
        ]);
    }

    report.table(
        "Fig. 6 (i)-(l) summary",
        &[
            "Trojan",
            "Anomalous spots",
            "Strongest spot",
            "AM sideband (9.2-9.4 MHz) energy vs golden",
        ],
        &rows,
    );
    report.note(
        "\nShape check (paper): T1 adds energy from its AM carrier (here: x4 in the\n\
         first sideband of the clock line, plus broadband burst content);\n\
         T2 and T4 raise many spots with T4 >= T2; T3 is not clearly visible.",
    );
    report.finish();
}
