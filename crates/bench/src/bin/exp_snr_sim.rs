#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E2 — §IV-B**: simulated SNR of the on-chip sensor vs. the external
//! probe (paper: 29.976 dB vs. 17.483 dB).

use emtrust::acquisition::TestBench;
use emtrust_bench::OrExit;
use emtrust_bench::{measure_snr, Report};
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;

fn main() {
    let mut report = Report::from_env("exp_snr_sim");
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).or_exit("simulation bench");

    let onchip = measure_snr(&bench, Channel::OnChipSensor, 64, 0x51).or_exit("on-chip snr");
    let external = measure_snr(&bench, Channel::ExternalProbe, 64, 0x52).or_exit("external snr");
    report.scalar("onchip_snr_db", onchip.snr_db);
    report.scalar("external_snr_db", external.snr_db);

    report.table(
        "E2 — Simulated SNR (paper §IV-B)",
        &["Probe", "Signal RMS", "Noise RMS", "SNR (dB)", "Paper (dB)"],
        &[
            vec![
                "on-chip sensor".into(),
                format!("{:.3e} V", onchip.signal_rms_v),
                format!("{:.3e} V", onchip.noise_rms_v),
                format!("{:.3}", onchip.snr_db),
                "29.976".into(),
            ],
            vec![
                "external probe".into(),
                format!("{:.3e} V", external.signal_rms_v),
                format!("{:.3e} V", external.noise_rms_v),
                format!("{:.3}", external.snr_db),
                "17.483".into(),
            ],
        ],
    );
    report.note(format!(
        "\nShape check: on-chip exceeds external by {:.1} dB (paper: 12.5 dB).",
        onchip.snr_db - external.snr_db
    ));
    assert!(
        onchip.snr_db > external.snr_db + 6.0,
        "on-chip sensor must clearly outperform the external probe"
    );
    report.finish();
}
