#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Register-level Trojan attribution under leave-one-Trojan-out.
//!
//! Extends `exp_localization`'s region-level experiment down to cell
//! granularity and owns the combined `BENCH_localization.json`
//! artifact. The protocol:
//!
//! 1. **Collect + localize** — the 4×2 array collects a golden campaign
//!    (keeping its accumulated switching activity), then arms each
//!    Trojan in turn and attributes the campaign with
//!    [`SensorArray::attribute`]: the per-tile margin map localizes the
//!    excess (hit@k over placement regions, exactly as before), and the
//!    [`CellEvidence`] — golden vs. suspect toggle activity under the
//!    *same* stimulus — scores every placed cell.
//! 2. **Leave-one-Trojan-out** — for each held-out Trojan, a
//!    [`LogisticModel`](emtrust::learned::LogisticModel) trains on the
//!    other three Trojans' labeled cells and re-ranks the held-out
//!    attribution; the ranking is scored with Precision@k, Recall@k,
//!    AUROC and IoU. Training is seeded and randomness-free, so the
//!    artifact is bit-identical across runs and worker counts.
//!
//! Gates (also enforced by `check_bench_schema` on the artifact):
//! every Trojan localizes within the top-3 regions, at least two at
//! rank 1, and the held-out AUROC exceeds 0.9 on at least 3 of the 4
//! Trojans. The per-fold top-ranked cells are exported to
//! `BENCH_attribution_cells.jsonl`.

use emtrust::acquisition::TestBench;
use emtrust::array::SensorArray;
use emtrust::attribution::CellEvidence;
use emtrust::fingerprint::FingerprintConfig;
use emtrust::telemetry::sink::{json_escape, json_number};
use emtrust_bench::attribution::{leave_one_out, LabeledAttribution, PRECISION_K, RECALL_K};
use emtrust_bench::{write_jsonl, ArtifactDoc, OrExit, Report, EXPERIMENT_KEY, TROJANS};
use emtrust_silicon::Channel;
use emtrust_trojan::TrojanKind;
use std::time::Instant;

const ROWS: usize = 4;
const COLS: usize = 2;
const TURNS: usize = 8;
const N_GOLDEN: usize = 32;
const N_SUSPECT: usize = 16;
/// Held-out AUROC must exceed this…
const AUROC_GATE: f64 = 0.9;
/// …on at least this many of the four folds.
const AUROC_PASSING_GATE: usize = 3;
/// Ranked cells exported per fold.
const EXPORT_TOP_K: usize = 50;

struct RegionOutcome {
    kind: TrojanKind,
    top_region: String,
    rank: Option<usize>,
    alarm_rate: f64,
    centroid_um: (f64, f64),
}

fn main() {
    let mut report = Report::from_env("exp_attribution");
    let chip = emtrust_trojan::ProtectedChip::with_all_trojans();
    // Raw per-tile energy features (no PCA), as in exp_localization:
    // T3's CDMA leak is an order of magnitude weaker than the other
    // Trojans and a per-tile PCA basis projects it away.
    let fingerprint = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };
    let mut array = SensorArray::builder(&chip)
        .with_grid(ROWS, COLS)
        .or_exit("grid")
        .with_turns(TURNS)
        .or_exit("turns")
        .with_fingerprint(fingerprint)
        .build()
        .or_exit("array build");
    let sensors = array.len();

    // Golden campaign (keeping its switching activity), timed against
    // the single-coil path on the same trace count and seed.
    let t0 = Instant::now();
    let (golden, golden_activity) = array
        .collect_with_activity(EXPERIMENT_KEY, N_GOLDEN, None, 42)
        .or_exit("golden collection");
    let array_seconds = t0.elapsed().as_secs_f64();

    let single_bench = TestBench::simulation(&chip).or_exit("single-coil bench");
    let t0 = Instant::now();
    let _single = single_bench
        .collect(EXPERIMENT_KEY, N_GOLDEN, None, Channel::OnChipSensor, 42)
        .or_exit("single-coil collection");
    let single_seconds = t0.elapsed().as_secs_f64();
    let per_sensor_overhead_pct = 100.0 * (array_seconds / sensors as f64 / single_seconds - 1.0);

    array.fit_golden(&golden).or_exit("golden fit");

    // Arm each Trojan in turn; suspect campaigns reuse the golden seed
    // so the per-tile excess and the per-cell toggle excess are purely
    // the armed Trojan's switching, not data-dependent AES energy.
    let mut regions = Vec::new();
    let mut folds = Vec::new();
    for kind in TROJANS {
        let (suspects, activity) = array
            .collect_with_activity(EXPERIMENT_KEY, N_SUSPECT, Some(kind), 42)
            .or_exit("suspect collection");
        let evidence = CellEvidence {
            baseline: &golden_activity,
            suspect: &activity,
        };
        let attribution = array
            .attribute(&suspects, Some(&evidence))
            .or_exit("attribution");
        let alarm_rate =
            attribution.heat().iter().map(|h| h.alarm_rate).sum::<f64>() / sensors as f64;
        regions.push(RegionOutcome {
            kind,
            top_region: attribution.top_region().unwrap_or("<none>").to_string(),
            rank: attribution.region_rank(kind.module_tag()),
            alarm_rate,
            centroid_um: attribution.centroid_um().unwrap_or((f64::NAN, f64::NAN)),
        });
        folds.push(LabeledAttribution { kind, attribution });
    }

    // Region-level gates, unchanged from exp_localization.
    let hit1 = regions.iter().filter(|a| a.rank == Some(0)).count();
    let hit3 = regions
        .iter()
        .filter(|a| a.rank.is_some_and(|r| r < 3))
        .count();
    assert!(
        hit3 == TROJANS.len(),
        "every Trojan must localize within the top-3 regions"
    );
    assert!(
        hit1 >= 2,
        "at least two Trojans must localize at rank 1 (got {hit1})"
    );

    // Cell-level leave-one-Trojan-out.
    let folds = leave_one_out(&folds).or_exit("leave-one-Trojan-out");
    let auroc_passing = folds.iter().filter(|f| f.auroc > AUROC_GATE).count();
    assert!(
        auroc_passing >= AUROC_PASSING_GATE,
        "held-out AUROC must exceed {AUROC_GATE} on at least {AUROC_PASSING_GATE} of \
         {} Trojans (got {auroc_passing})",
        TROJANS.len()
    );

    report.table(
        &format!("Region localization on a {ROWS}x{COLS} sensor array"),
        &[
            "trojan",
            "placed region",
            "top region",
            "rank",
            "alarm rate",
        ],
        &regions
            .iter()
            .map(|a| {
                vec![
                    format!("{:?}", a.kind),
                    a.kind.module_tag().to_string(),
                    a.top_region.clone(),
                    a.rank.map_or("-".into(), |r| (r + 1).to_string()),
                    format!("{:.2}", a.alarm_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.table(
        "Cell-level attribution, leave-one-Trojan-out",
        &[
            "held-out",
            "cells",
            "true",
            &format!("P@{PRECISION_K}"),
            &format!("P@{RECALL_K}"),
            &format!("R@{RECALL_K}"),
            "AUROC",
            "IoU",
        ],
        &folds
            .iter()
            .map(|f| {
                vec![
                    format!("{:?}", f.kind),
                    f.cells.to_string(),
                    f.true_cells.to_string(),
                    format!("{:.3}", f.precision_at_10),
                    format!("{:.3}", f.precision_at_50),
                    format!("{:.3}", f.recall_at_50),
                    format!("{:.4}", f.auroc),
                    format!("{:.3}", f.iou),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.scalar("hit_at_1", hit1 as f64);
    report.scalar("hit_at_3", hit3 as f64);
    report.scalar("auroc_passing", auroc_passing as f64);
    report.scalar("per_sensor_overhead_pct", per_sensor_overhead_pct);

    let trojan_json: Vec<String> = regions
        .iter()
        .map(|a| {
            format!(
                "    {{\"trojan\": \"{:?}\", \"region\": \"{}\", \"top_region\": \"{}\", \
                 \"rank\": {}, \"hit1\": {}, \"hit3\": {}, \"alarm_rate\": {}, \
                 \"centroid_x_um\": {}, \"centroid_y_um\": {}}}",
                a.kind,
                json_escape(a.kind.module_tag()),
                json_escape(&a.top_region),
                a.rank.map_or("null".into(), |r| (r + 1).to_string()),
                a.rank == Some(0),
                a.rank.is_some_and(|r| r < 3),
                json_number(a.alarm_rate),
                json_number(a.centroid_um.0),
                json_number(a.centroid_um.1),
            )
        })
        .collect();
    let attribution_json: Vec<String> = folds.iter().map(|f| f.to_json()).collect();

    let cell_lines: Vec<String> = folds
        .iter()
        .flat_map(|f| f.top_cells_jsonl(EXPORT_TOP_K))
        .collect();
    write_jsonl("BENCH_attribution_cells.jsonl", &cell_lines);
    report.note("\nwrote BENCH_attribution_cells.jsonl");

    ArtifactDoc::new("localization")
        .field_u64("rows", ROWS as u64)
        .field_u64("cols", COLS as u64)
        .field_u64("sensors", sensors as u64)
        .field_u64("turns", TURNS as u64)
        .field_u64("n_golden", N_GOLDEN as u64)
        .field_u64("n_suspect_per_trojan", N_SUSPECT as u64)
        .field_u64("hit_at_1", hit1 as u64)
        .field_u64("hit_at_3", hit3 as u64)
        .field_f64("single_seconds", single_seconds)
        .field_f64("array_seconds", array_seconds)
        .field_f64("per_sensor_overhead_pct", per_sensor_overhead_pct)
        .field_array("trojans", &trojan_json)
        .field_f64("auroc_gate", AUROC_GATE)
        .field_u64("auroc_passing", auroc_passing as u64)
        .field_array("attribution", &attribution_json)
        .write("BENCH_localization.json", &mut report);
    report.finish();
}
