#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E5 — §V-A**: measured SNR on the fabricated chip (paper: on-chip
//! 30.5489 dB vs. external 13.8684 dB; the external probe loses several
//! dB versus its simulation because of "more unintended influences").

use emtrust::acquisition::TestBench;
use emtrust_bench::OrExit;
use emtrust_bench::{measure_snr, Report};
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;

fn main() {
    let mut report = Report::from_env("exp_snr_silicon");
    let chip = ProtectedChip::golden();
    let sim = TestBench::simulation(&chip).or_exit("simulation bench");
    let silicon = TestBench::silicon(&chip, 1).or_exit("silicon bench");

    let sim_on = measure_snr(&sim, Channel::OnChipSensor, 64, 0x60).or_exit("sim on-chip snr");
    let sim_ext = measure_snr(&sim, Channel::ExternalProbe, 64, 0x61).or_exit("sim external snr");
    let si_on =
        measure_snr(&silicon, Channel::OnChipSensor, 64, 0x62).or_exit("silicon on-chip snr");
    let si_ext =
        measure_snr(&silicon, Channel::ExternalProbe, 64, 0x63).or_exit("silicon external snr");
    report.scalar("sim_onchip_snr_db", sim_on.snr_db);
    report.scalar("sim_external_snr_db", sim_ext.snr_db);
    report.scalar("silicon_onchip_snr_db", si_on.snr_db);
    report.scalar("silicon_external_snr_db", si_ext.snr_db);

    report.table(
        "E5 — SNR on the fabricated chip (paper §V-A)",
        &[
            "Probe",
            "Sim SNR (dB)",
            "Silicon SNR (dB)",
            "Paper sim",
            "Paper silicon",
        ],
        &[
            vec![
                "on-chip sensor".into(),
                format!("{:.3}", sim_on.snr_db),
                format!("{:.3}", si_on.snr_db),
                "29.976".into(),
                "30.5489".into(),
            ],
            vec![
                "external probe".into(),
                format!("{:.3}", sim_ext.snr_db),
                format!("{:.3}", si_ext.snr_db),
                "17.483".into(),
                "13.8684".into(),
            ],
        ],
    );

    report.note(format!(
        "\nShape checks:\n\
         - on-chip silicon ≈ on-chip simulation ({:+.2} dB delta; paper {:+.2} dB)\n\
         - external silicon < external simulation ({:+.2} dB delta; paper {:+.2} dB)\n\
         - on-chip beats external on silicon by {:.1} dB (paper 16.7 dB)",
        si_on.snr_db - sim_on.snr_db,
        30.5489 - 29.976,
        si_ext.snr_db - sim_ext.snr_db,
        13.8684 - 17.483,
        si_on.snr_db - si_ext.snr_db,
    ));
    assert!(
        si_ext.snr_db < sim_ext.snr_db - 1.0,
        "external must degrade on silicon"
    );
    assert!(
        (si_on.snr_db - sim_on.snr_db).abs() < 3.0,
        "on-chip must hold up on silicon"
    );
    assert!(si_on.snr_db > si_ext.snr_db + 10.0);
    report.finish();
}
