#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Spatial Trojan localization with the multi-sensor EM array.
//!
//! A 4×2 grid of sub-spirals tiles the die; every tile runs its own
//! detection pipeline against its own golden fingerprint, and the
//! [`Localizer`](emtrust::array::Localizer) fuses the per-tile anomaly
//! margins into a heat-map centroid that is ranked against the
//! floorplan's placement regions. Each of the four digital Trojans is
//! armed in turn and the experiment reports whether its placement
//! region (`trojan1` … `trojan4`) comes back at rank 1 (`hit@1`) or
//! within the top three (`hit@3`).
//!
//! The array shares one logic simulation and one current-synthesis pass
//! per encryption across all eight sensors, so the interesting overhead
//! is *per sensor*: collection wall-clock divided by the sensor count,
//! against the single-coil `TestBench` path on the same workload.
//!
//! This binary reports the region-level table only; `exp_attribution`
//! runs the same campaign at cell granularity under leave-one-Trojan-out
//! and owns the `BENCH_localization.json` artifact.

use emtrust::acquisition::TestBench;
use emtrust::array::SensorArray;
use emtrust::fingerprint::FingerprintConfig;
use emtrust_bench::{OrExit, Report, EXPERIMENT_KEY, TROJANS};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use std::time::Instant;

const ROWS: usize = 4;
const COLS: usize = 2;
const TURNS: usize = 8;
const N_GOLDEN: usize = 32;
const N_SUSPECT: usize = 16;

struct RegionOutcome {
    kind: TrojanKind,
    top_region: String,
    rank: Option<usize>,
    alarm_rate: f64,
}

fn main() {
    let mut report = Report::from_env("exp_localization");
    let chip = ProtectedChip::with_all_trojans();
    // Raw per-tile energy features (no PCA): T3's CDMA leak is an order
    // of magnitude weaker than the other Trojans (paper §IV-C: 0.05 vs
    // 0.25–0.28), and a per-tile PCA basis fitted on an eighth of the
    // coil signal projects it away.
    let fingerprint = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };
    let mut array = SensorArray::builder(&chip)
        .with_grid(ROWS, COLS)
        .or_exit("grid")
        .with_turns(TURNS)
        .or_exit("turns")
        .with_fingerprint(fingerprint)
        .build()
        .or_exit("array build");
    let sensors = array.len();

    // Golden campaign, timed against the single-coil path on the same
    // trace count and seed.
    let t0 = Instant::now();
    let golden = array
        .collect(EXPERIMENT_KEY, N_GOLDEN, None, 42)
        .or_exit("golden collection");
    let array_seconds = t0.elapsed().as_secs_f64();

    let single_bench = TestBench::simulation(&chip).or_exit("single-coil bench");
    let t0 = Instant::now();
    let _single = single_bench
        .collect(EXPERIMENT_KEY, N_GOLDEN, None, Channel::OnChipSensor, 42)
        .or_exit("single-coil collection");
    let single_seconds = t0.elapsed().as_secs_f64();
    let per_sensor_overhead_pct = 100.0 * (array_seconds / sensors as f64 / single_seconds - 1.0);

    array.fit_golden(&golden).or_exit("golden fit");

    // Arm each digital Trojan in turn and localize the excess energy.
    // Suspect campaigns reuse the golden seed: same fixed plaintext,
    // same noise draws — the per-tile excess is then purely the armed
    // Trojan's switching current, not data-dependent AES energy (a
    // different stimulus would alarm everywhere and localize nothing).
    let mut outcomes = Vec::new();
    for kind in TROJANS {
        let suspects = array
            .collect(EXPERIMENT_KEY, N_SUSPECT, Some(kind), 42)
            .or_exit("suspect collection");
        let attribution = array.attribute(&suspects, None).or_exit("attribution");
        let alarm_rate =
            attribution.heat().iter().map(|h| h.alarm_rate).sum::<f64>() / sensors as f64;
        outcomes.push(RegionOutcome {
            kind,
            top_region: attribution.top_region().unwrap_or("<none>").to_string(),
            rank: attribution.region_rank(kind.module_tag()),
            alarm_rate,
        });
    }

    let hit1 = outcomes.iter().filter(|a| a.rank == Some(0)).count();
    let hit3 = outcomes
        .iter()
        .filter(|a| a.rank.is_some_and(|r| r < 3))
        .count();
    assert!(
        hit3 == TROJANS.len(),
        "every Trojan must localize within the top-3 regions"
    );
    assert!(
        hit1 >= 2,
        "at least two Trojans must localize at rank 1 (got {hit1})"
    );

    report.table(
        &format!("Trojan localization on a {ROWS}x{COLS} sensor array"),
        &[
            "trojan",
            "placed region",
            "top region",
            "rank",
            "alarm rate",
        ],
        &outcomes
            .iter()
            .map(|a| {
                vec![
                    format!("{:?}", a.kind),
                    a.kind.module_tag().to_string(),
                    a.top_region.clone(),
                    a.rank.map_or("-".into(), |r| (r + 1).to_string()),
                    format!("{:.2}", a.alarm_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.scalar("hit_at_1", hit1 as f64);
    report.scalar("hit_at_3", hit3 as f64);
    report.scalar("single_seconds", single_seconds);
    report.scalar("array_seconds", array_seconds);
    report.scalar("per_sensor_overhead_pct", per_sensor_overhead_pct);
    report.finish();
}
