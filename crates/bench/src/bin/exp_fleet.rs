#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **Robustness — fleet ingestion under transport chaos**: drives 10 000
//! chips through the sharded fleet service behind a seeded
//! transport-fault schedule (drops, duplicates, reorders, delays,
//! chip-id corruption) plus a cohort of poisoned chips that trip their
//! circuit breakers, and writes `BENCH_fleet.json`. The claims the
//! artifact carries, all asserted here before the file is written:
//!
//! - **zero panics** — the whole chaos run executes under
//!   `catch_unwind`;
//! - **bounded queues** — no shard queue is ever observed deeper than
//!   its capacity (+1 transient slot for a send racing the worker's
//!   drain);
//! - **quarantine works** — the poisoned cohort trips breakers and has
//!   admissions refused, while every trace that reached a pipeline is
//!   accounted for;
//! - **no cross-chip leakage** — in a controlled side-run, healthy
//!   chips' per-chip accounting and health are bit-identical with and
//!   without a quarantined neighbour on the same shard;
//! - **ingest latency** — per-call p50/p99/max latency and sustained
//!   traces/sec are measured and published (the schema gate bounds
//!   p99).

use emtrust::faults::{TransportFaultKind, TransportFaultSpec, TransportPlan};
use emtrust_bench::{ArtifactDoc, Report};
use emtrust_fleet::{
    BreakerConfig, ChaosTransport, FleetConfig, FleetService, FleetSummary, StoreConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

const N_CHIPS: usize = 10_000;
const N_POISONED: usize = 20;
const ROUNDS: usize = 4;
const BATCH: usize = 2;
const TRACE_LEN: usize = 64;
const PLAN_SEED: u64 = 0xF1EE7;

fn clean_batch(chip: u64, round: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(chip.wrapping_mul(0x9E37_79B9).wrapping_add(round));
    (0..n)
        .map(|_| {
            (0..TRACE_LEN)
                .map(|j| (j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect()
}

fn scale_config() -> FleetConfig {
    FleetConfig {
        shards: 8,
        queue_capacity: 512,
        golden_traces: 4,
        store: StoreConfig {
            baseline_window: 8,
            capacity: 512,
            cold_capacity: 2048,
        },
        seed: PLAN_SEED,
        ..FleetConfig::default()
    }
}

fn chaos_plan() -> TransportPlan {
    TransportPlan::new(PLAN_SEED)
        .with(TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0).with_probability(0.05))
        .with(
            TransportFaultSpec::new(TransportFaultKind::BatchDuplicate, 1.0).with_probability(0.05),
        )
        .with(TransportFaultSpec::new(TransportFaultKind::BatchReorder, 1.0).with_probability(0.05))
        .with(TransportFaultSpec::new(TransportFaultKind::BatchDelay, 0.5).with_probability(0.2))
        .with(
            TransportFaultSpec::new(TransportFaultKind::ChipIdCorruption, 1.0)
                .with_probability(0.02),
        )
}

struct ScaleOutcome {
    summary: FleetSummary,
    chaos: emtrust_fleet::ChaosStats,
    latencies_us: Vec<u64>,
    max_depth: usize,
    elapsed_s: f64,
    traces_offered: u64,
}

/// The 10k-chip chaos run. Chip-major order: each chip bursts all its
/// rounds, the realistic shape for fleet check-ins and the one that
/// exercises LRU churn hardest (every chip displaces an older one).
fn run_scale() -> Result<ScaleOutcome, String> {
    let service = FleetService::new(scale_config()).map_err(|e| e.to_string())?;
    let mut link = ChaosTransport::new(chaos_plan());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(N_CHIPS * ROUNDS);
    let mut max_depth = 0usize;
    let mut traces_offered = 0u64;
    let started = Instant::now();
    for chip in 0..N_CHIPS as u64 {
        let chip_id = format!("chip-{chip:05}");
        for round in 0..ROUNDS as u64 {
            let batch = clean_batch(chip, round, BATCH);
            traces_offered += batch.len() as u64;
            let t0 = Instant::now();
            let receipts = link
                .deliver(&service, &chip_id, &batch)
                .map_err(|e| e.to_string())?;
            latencies_us.push(t0.elapsed().as_micros() as u64);
            for r in &receipts {
                max_depth = max_depth.max(r.depth);
            }
        }
    }
    // Poison storm: a cohort floods rejectable batches round after
    // round. The pacing beat lets the shard workers feed rejection
    // streaks back into the breakers, so trips — and then refusals —
    // land while the storm is still running.
    for round in 0..12u64 {
        for chip in 0..N_POISONED as u64 {
            let chip_id = format!("chip-{chip:05}");
            let batch = vec![vec![f64::NAN; TRACE_LEN]; 3];
            traces_offered += batch.len() as u64;
            let t0 = Instant::now();
            let receipts = link
                .deliver(&service, &chip_id, &batch)
                .map_err(|e| e.to_string())?;
            latencies_us.push(t0.elapsed().as_micros() as u64);
            for r in &receipts {
                max_depth = max_depth.max(r.depth);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = round;
    }
    for r in link.flush(&service).map_err(|e| e.to_string())? {
        max_depth = max_depth.max(r.depth);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let chaos = link.stats();
    let summary = service.finish().map_err(|e| e.to_string())?;
    Ok(ScaleOutcome {
        summary,
        chaos,
        latencies_us,
        max_depth,
        elapsed_s,
        traces_offered,
    })
}

/// Controlled leakage probe: the same healthy workload with and without
/// a poisoned neighbour; healthy chips must come out bit-identical.
fn run_leakage_probe(poison: bool) -> Result<FleetSummary, String> {
    let cfg = FleetConfig {
        shards: 2,
        queue_capacity: 256, // never sheds: comparison is timing-free
        golden_traces: 4,
        store: StoreConfig {
            baseline_window: 8,
            capacity: 64, // > chip count: no eviction-order coupling
            ..StoreConfig::default()
        },
        breaker: BreakerConfig {
            trip_after: 6,
            ..BreakerConfig::default()
        },
        ..FleetConfig::default()
    };
    let service = FleetService::new(cfg).map_err(|e| e.to_string())?;
    let chips = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
    for round in 0..12u64 {
        for (c, chip) in chips.iter().enumerate() {
            let receipt = service
                .ingest(chip, clean_batch(c as u64 + 1, round, BATCH))
                .map_err(|e| e.to_string())?;
            if !receipt.verdict.accepted() {
                return Err(format!("healthy {chip} refused in round {round}"));
            }
        }
        if poison {
            let _ = service
                .ingest("poison", vec![vec![f64::NAN; TRACE_LEN]; 3])
                .map_err(|e| e.to_string())?;
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    service.finish().map_err(|e| e.to_string())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fail(report: Report, what: &str) -> ! {
    drop(report);
    eprintln!("exp_fleet: {what}");
    std::process::exit(1)
}

fn main() {
    let mut report = Report::from_env("exp_fleet");

    // Zero-panic gate: the whole chaos run under catch_unwind.
    let outcome = catch_unwind(AssertUnwindSafe(run_scale));
    let zero_panics = outcome.is_ok();
    let scale = match outcome {
        Ok(Ok(scale)) => scale,
        Ok(Err(e)) => fail(report, &format!("scale run failed: {e}")),
        Err(_) => fail(report, "scale run panicked"),
    };

    let cfg = scale_config();
    let queue_capacity = cfg.queue_capacity;
    // +1: a send may land between the worker's recv and its depth
    // decrement; the transient overshoot is bounded by one.
    let bounded_queue =
        scale.max_depth <= queue_capacity + 1 && scale.summary.peak_depth <= queue_capacity + 1;

    let mut latencies = scale.latencies_us.clone();
    latencies.sort_unstable();
    let p50_us = percentile(&latencies, 0.50);
    let p99_us = percentile(&latencies, 0.99);
    let max_us = latencies.last().copied().unwrap_or(0);
    let delivered_traces =
        scale.summary.total_scored() + scale.summary.shards.iter().map(|s| s.rejected).sum::<u64>();
    let traces_per_sec = if scale.elapsed_s > 0.0 {
        delivered_traces as f64 / scale.elapsed_s
    } else {
        0.0
    };

    let chips_tracked = scale.summary.chips.len();
    let poisoned_quarantined = scale
        .summary
        .chips
        .iter()
        .filter(|c| c.breaker_trips > 0)
        .count();

    // Leakage probe: bit-identical healthy accounting with and without
    // the quarantined neighbour.
    let clean_run = match run_leakage_probe(false) {
        Ok(s) => s,
        Err(e) => fail(report, &format!("leakage probe (clean): {e}")),
    };
    let stormy_run = match run_leakage_probe(true) {
        Ok(s) => s,
        Err(e) => fail(report, &format!("leakage probe (poisoned): {e}")),
    };
    let victim_tripped = stormy_run
        .chip("poison")
        .map(|c| c.breaker_trips >= 1)
        .unwrap_or(false);
    let leakage_bit_identical = victim_tripped
        && stormy_run.quarantined >= 1
        && clean_run.chips.iter().all(|a| {
            stormy_run
                .chip(&a.chip_id)
                .is_some_and(|b| a.stats == b.stats && a.health == b.health && !b.quarantined)
        });

    // Hard gates — the artifact only exists if the claims hold.
    if !zero_panics {
        fail(report, "panic observed");
    }
    if !bounded_queue {
        fail(
            report,
            &format!(
                "queue depth {} / peak {} exceeded capacity {}",
                scale.max_depth, scale.summary.peak_depth, queue_capacity
            ),
        );
    }
    if !leakage_bit_identical {
        fail(report, "quarantine leaked into healthy chips");
    }
    if chips_tracked < N_CHIPS - 100 {
        fail(
            report,
            &format!("only {chips_tracked} chips tracked of {N_CHIPS}"),
        );
    }
    if poisoned_quarantined == 0 {
        fail(report, "no poisoned chip ever tripped its breaker");
    }
    if scale.summary.quarantined == 0 {
        fail(report, "no admission was ever refused at a breaker");
    }

    report.table(
        "Fleet chaos run (10k chips)",
        &["metric", "value"],
        &[
            vec!["chips offered".into(), N_CHIPS.to_string()],
            vec!["chips tracked".into(), chips_tracked.to_string()],
            vec!["traces offered".into(), scale.traces_offered.to_string()],
            vec!["traces delivered".into(), delivered_traces.to_string()],
            vec!["traces/sec".into(), format!("{traces_per_sec:.0}")],
            vec!["p50 ingest (us)".into(), p50_us.to_string()],
            vec!["p99 ingest (us)".into(), p99_us.to_string()],
            vec!["max ingest (us)".into(), max_us.to_string()],
            vec!["max queue depth".into(), scale.max_depth.to_string()],
            vec![
                "peak queue depth".into(),
                scale.summary.peak_depth.to_string(),
            ],
            vec!["admitted".into(), scale.summary.admitted.to_string()],
            vec!["throttled".into(), scale.summary.throttled.to_string()],
            vec!["shed".into(), scale.summary.shed.to_string()],
            vec![
                "quarantine refusals".into(),
                scale.summary.quarantined.to_string(),
            ],
            vec![
                "breaker trips (chips)".into(),
                poisoned_quarantined.to_string(),
            ],
            vec!["alarms".into(), scale.summary.total_alarms().to_string()],
        ],
    );
    report.table(
        "Transport chaos accounting",
        &["metric", "value"],
        &[
            vec!["offered".into(), scale.chaos.offered.to_string()],
            vec!["dropped".into(), scale.chaos.dropped.to_string()],
            vec!["duplicated".into(), scale.chaos.duplicated.to_string()],
            vec!["reordered".into(), scale.chaos.reordered.to_string()],
            vec!["corrupted".into(), scale.chaos.corrupted.to_string()],
            vec!["delivered".into(), scale.chaos.delivered.to_string()],
            vec![
                "simulated delay (us)".into(),
                scale.chaos.delay_us.to_string(),
            ],
        ],
    );
    report.scalar("traces_per_sec", traces_per_sec);
    report.scalar("p99_ingest_us", p99_us as f64);
    report.scalar("max_queue_depth", scale.max_depth as f64);

    let store_totals: (u64, u64, u64, usize, usize) = scale.summary.shards.iter().fold(
        (0, 0, 0, 0, 0),
        |(fits, refits, evictions, hot, cold), s| {
            (
                fits + s.fits,
                refits + s.refits,
                evictions + s.evictions,
                hot + s.hot,
                cold + s.cold,
            )
        },
    );

    ArtifactDoc::new("fleet_ingestion")
        .field_u64("n_chips", N_CHIPS as u64)
        .field_u64("n_poisoned", N_POISONED as u64)
        .field_u64("rounds", ROUNDS as u64)
        .field_u64("batch_traces", BATCH as u64)
        .field_u64("shards", cfg.shards as u64)
        .field_u64("queue_capacity", queue_capacity as u64)
        .field_u64("chips_tracked", chips_tracked as u64)
        .field_u64("traces_offered", scale.traces_offered)
        .field_u64("traces_delivered", delivered_traces)
        .field_f64("elapsed_s", scale.elapsed_s)
        .field_f64("traces_per_sec", traces_per_sec)
        .field_u64("p50_ingest_us", p50_us)
        .field_u64("p99_ingest_us", p99_us)
        .field_u64("max_ingest_us", max_us)
        .field_u64("max_queue_depth", scale.max_depth as u64)
        .field_bool("bounded_queue", bounded_queue)
        .field_bool("zero_panics", zero_panics)
        .field_bool("leakage_bit_identical", leakage_bit_identical)
        .field_raw(
            "admissions",
            format!(
                "{{\"admitted\": {}, \"throttled\": {}, \"shed\": {}, \"quarantined\": {}}}",
                scale.summary.admitted,
                scale.summary.throttled,
                scale.summary.shed,
                scale.summary.quarantined
            ),
        )
        .field_raw(
            "transport",
            format!(
                "{{\"offered\": {}, \"dropped\": {}, \"duplicated\": {}, \"reordered\": {}, \
                 \"corrupted\": {}, \"delivered\": {}, \"delay_us\": {}}}",
                scale.chaos.offered,
                scale.chaos.dropped,
                scale.chaos.duplicated,
                scale.chaos.reordered,
                scale.chaos.corrupted,
                scale.chaos.delivered,
                scale.chaos.delay_us
            ),
        )
        .field_raw(
            "store",
            format!(
                "{{\"fits\": {}, \"refits\": {}, \"evictions\": {}, \"hot\": {}, \"cold\": {}}}",
                store_totals.0, store_totals.1, store_totals.2, store_totals.3, store_totals.4
            ),
        )
        .field_raw(
            "breakers",
            format!(
                "{{\"tripped_chips\": {poisoned_quarantined}, \"refusals\": {}}}",
                scale.summary.quarantined
            ),
        )
        .field_f64("alarm_rate", {
            let scored = scale.summary.total_scored();
            if scored == 0 {
                0.0
            } else {
                scale.summary.total_alarms() as f64 / scored as f64
            }
        })
        .field_raw(
            "leakage_probe",
            format!(
                "{{\"healthy_chips\": {}, \"victim_tripped\": {victim_tripped}, \
                 \"bit_identical\": {leakage_bit_identical}}}",
                clean_run.chips.len()
            ),
        )
        .write("BENCH_fleet.json", &mut report);
    report.finish();
}
