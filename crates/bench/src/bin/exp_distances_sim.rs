#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E3 — §IV-C**: Euclidean distances between the reference design and
//! each Trojan-activated design, measured by the on-chip sensor in
//! simulation (paper: 0.27 / 0.25 / 0.05 / 0.28 for T1..T4).

use emtrust::acquisition::TestBench;
use emtrust::euclidean::trojan_distance_study;
use emtrust::fingerprint::FingerprintConfig;
use emtrust_bench::OrExit;
use emtrust_bench::{standard_chip, Report, EXPERIMENT_KEY, TROJANS};
use emtrust_silicon::Channel;

fn main() {
    let mut report = Report::from_env("exp_distances_sim");
    let chip = standard_chip();
    let bench = TestBench::simulation(&chip).or_exit("simulation bench");
    // Simulation traces carry minimal interference, so the study runs on
    // the full feature space; PCA denoising is exercised on the silicon
    // benches and in the `ablation_pca` benchmark.
    let config = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };
    let rows = trojan_distance_study(
        &bench,
        EXPERIMENT_KEY,
        &TROJANS,
        48,
        Channel::OnChipSensor,
        config,
        0xD15,
    )
    .or_exit("distance study");

    let paper = [0.27, 0.25, 0.05, 0.28];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, p)| {
            vec![
                r.kind.label().to_string(),
                format!("{:.4}", r.centroid_distance),
                format!("{:.4}", r.threshold),
                if r.detected { "yes" } else { "no" }.to_string(),
                format!("{:.0}%", 100.0 * r.per_trace_detection_rate),
                format!("{p:.2}"),
            ]
        })
        .collect();
    for r in &rows {
        report.scalar(
            &format!("{}_distance", r.kind.label().to_lowercase()),
            r.centroid_distance,
        );
    }
    report.table(
        "E3 — Euclidean distances, on-chip sensor, simulation (paper §IV-C)",
        &[
            "Trojan",
            "Distance",
            "EDth (Eq.1)",
            "Detected",
            "Trace rate",
            "Paper",
        ],
        &table,
    );

    let d: Vec<f64> = rows.iter().map(|r| r.centroid_distance).collect();
    report.note(format!(
        "\nShape check: T3 is the hardest (smallest distance), T1/T2/T4 comparable\n\
         and well above T3 — ours: T3 = {:.4} vs min(T1,T2,T4) = {:.4}.",
        d[2],
        d[0].min(d[1]).min(d[3])
    ));
    assert!(
        d[2] < 0.5 * d[0].min(d[1]).min(d[3]),
        "T3 must be smallest by far"
    );
    assert!(
        rows.iter().all(|r| r.detected),
        "all four Trojans detected in simulation"
    );
    report.finish();
}
