#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **Extension — baseline comparison**: the paper positions the on-chip
//! EM framework against global power fingerprinting (its reference \[3\]),
//! whose weakness against small, stealthy Trojans motivates the work.
//! This binary runs both detectors over the same chip and prints the
//! margins side by side.

use emtrust::acquisition::{Stimulus, TestBench};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::power_baseline::PowerBaseline;
use emtrust_bench::OrExit;
use emtrust_bench::{standard_chip, Report, EXPERIMENT_KEY, TROJANS};
use emtrust_silicon::Channel;

fn main() {
    let mut report = Report::from_env("exp_baseline");
    let chip = standard_chip();
    let stimulus = Stimulus::Fixed(*b"baseline-vs-em!!");
    let cfg = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };

    // Global power fingerprinting (Agrawal et al. \[3\]).
    let power = PowerBaseline::new(&chip).or_exit("baseline");
    let power_golden = power
        .collect(EXPERIMENT_KEY, stimulus, 24, None, 2)
        .or_exit("golden");
    let power_fp = GoldenFingerprint::fit(&power_golden, cfg).or_exit("fit");

    // The paper's framework: on-chip EM sensor.
    let bench = TestBench::simulation(&chip).or_exit("bench");
    let em_golden = bench
        .collect_with(EXPERIMENT_KEY, stimulus, 24, None, Channel::OnChipSensor, 2)
        .or_exit("golden");
    let em_fp = GoldenFingerprint::fit(&em_golden, cfg).or_exit("fit");

    let mut rows = Vec::new();
    for kind in TROJANS {
        let p_armed = power
            .collect(EXPERIMENT_KEY, stimulus, 12, Some(kind), 3)
            .or_exit("armed");
        let p_margin = power_fp.centroid_distance(&p_armed).or_exit("dist") / power_fp.threshold();
        let e_armed = bench
            .collect_with(
                EXPERIMENT_KEY,
                stimulus,
                12,
                Some(kind),
                Channel::OnChipSensor,
                3,
            )
            .or_exit("armed");
        let e_rate = {
            let d = em_fp.set_distances(&e_armed).or_exit("dists");
            d.iter().filter(|&&x| x > em_fp.threshold()).count() as f64 / d.len() as f64
        };
        let e_margin = em_fp.centroid_distance(&e_armed).or_exit("dist") / em_fp.threshold();
        report.scalar(
            &format!("{}_power_margin", kind.label().to_lowercase()),
            p_margin,
        );
        report.scalar(
            &format!("{}_em_margin", kind.label().to_lowercase()),
            e_margin,
        );
        rows.push(vec![
            kind.label().to_string(),
            format!(
                "{p_margin:.2}x {}",
                if p_margin < 1.0 {
                    "MISSED"
                } else if p_margin < 2.0 {
                    "marginal"
                } else {
                    "caught"
                }
            ),
            format!(
                "{e_margin:.2}x {}",
                if e_margin > 1.0 || e_rate >= 0.5 {
                    "caught"
                } else {
                    "MISSED"
                }
            ),
            format!("{:.0}%", 100.0 * e_rate),
        ]);
    }
    report.table(
        "Baseline comparison — global power fingerprinting [3] vs on-chip EM sensor",
        &["Trojan", "Power margin", "EM margin", "EM trace rate"],
        &rows,
    );
    report.note(
        "\nMargins are centroid distance over the Eq. 1 threshold (>1 = over it).\n\
         The power baseline sees the power-hungry Trojans comfortably but is\n\
         left with almost no margin on the stealthy CDMA leaker — its fast,\n\
         tiny signature vanishes behind the package's decoupling network,\n\
         while the on-chip EM sensor flags every one of its traces.",
    );
    report.finish();
}
