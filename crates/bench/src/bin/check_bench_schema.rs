#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Schema checker for the machine-readable bench artifacts — CI runs
//! this against `BENCH_telemetry.json` (and optionally
//! `BENCH_parallel.json`) after the experiment binaries, so a drifting
//! field name or a NaN-turned-null fails the build, not a downstream
//! dashboard.
//!
//! Usage: `check_bench_schema <file.json>... [--jsonl <file.jsonl>...]`
//! — exits 0 when every file validates, 1 with a per-file reason
//! otherwise. Files after `--jsonl` are validated as decision logs
//! (`TELEMETRY_decisions.jsonl`): one JSON [`DecisionRecord`] per line,
//! every record carrying its domain, verdict, detector margins and
//! health state, and at least one fused alarm in the log.
//!
//! [`DecisionRecord`]: emtrust::telemetry::DecisionRecord

use emtrust_bench::json::Value;

fn expect<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("missing key \"{key}\" ({what})"))
}

fn expect_number(v: &Value, key: &str) -> Result<f64, String> {
    expect(v, key, "number")?
        .as_f64()
        .ok_or_else(|| format!("\"{key}\" must be a number"))
}

fn expect_u64(v: &Value, key: &str) -> Result<u64, String> {
    expect(v, key, "integer")?
        .as_u64()
        .ok_or_else(|| format!("\"{key}\" must be a non-negative integer"))
}

fn expect_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    expect(v, key, "string")?
        .as_str()
        .ok_or_else(|| format!("\"{key}\" must be a string"))
}

fn expect_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    expect(v, key, "array")?
        .as_array()
        .ok_or_else(|| format!("\"{key}\" must be an array"))
}

/// Provenance fields every bench artifact carries. The `"unknown"`
/// sentinel is rejected: the writer falls back to `git rev-parse HEAD`
/// when `EMTRUST_GIT_REV` is unset, so a committed artifact without a
/// real revision means the environment was broken when it was generated.
fn check_provenance(doc: &Value) -> Result<(), String> {
    expect_str(doc, "benchmark")?;
    expect_u64(doc, "timestamp_unix")?;
    let rev = expect_str(doc, "git_rev")?;
    if rev == "unknown" || rev.is_empty() {
        return Err("\"git_rev\" must carry a real revision, not \"unknown\"".into());
    }
    Ok(())
}

fn check_telemetry(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    expect_u64(doc, "n_golden")?;
    expect_u64(doc, "n_suspect_per_trojan")?;
    expect_number(doc, "null_seconds")?;
    expect_number(doc, "recorded_seconds")?;
    expect_number(doc, "overhead_pct")?;
    expect_number(doc, "disabled_seconds")?;
    let disabled = expect_number(doc, "disabled_overhead_pct")?;
    if disabled > 2.0 {
        return Err(format!(
            "\"disabled_overhead_pct\" {disabled} exceeds the 2% disabled-path budget"
        ));
    }
    expect_number(doc, "forensic_seconds")?;
    let forensic = expect_number(doc, "forensics_overhead_pct")?;
    if forensic > 5.0 {
        return Err(format!(
            "\"forensics_overhead_pct\" {forensic} exceeds the 5% fully-enabled budget"
        ));
    }
    if expect_u64(doc, "decision_count")? == 0 {
        return Err("\"decision_count\" must be > 0 — the forensic pass must log decisions".into());
    }
    if expect_u64(doc, "flight_window_count")? == 0 {
        return Err(
            "\"flight_window_count\" must be > 0 — alarms must freeze flight windows".into(),
        );
    }
    if expect_u64(doc, "labeled_series")? == 0 {
        return Err("\"labeled_series\" must be > 0 — the labeled pass must emit series".into());
    }
    expect_u64(doc, "series_overflowed")?;
    let stages = expect_array(doc, "stages")?;
    if stages.is_empty() {
        return Err("\"stages\" must not be empty".into());
    }
    for (i, stage) in stages.iter().enumerate() {
        (|| {
            expect_str(stage, "span")?;
            expect_u64(stage, "count")?;
            expect_number(stage, "total_ns")?;
            expect_number(stage, "mean_ns")?;
            expect_number(stage, "max_ns")?;
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("stages[{i}]: {e}"))?;
    }
    let alarms = expect(doc, "alarms", "object")?;
    expect_u64(alarms, "total")?;
    expect_u64(alarms, "time_domain")?;
    expect_u64(alarms, "spectral")?;
    expect_u64(alarms, "first_correlation_id")?;
    if expect_u64(alarms, "total")? == 0 {
        return Err("\"alarms.total\" must be > 0 — the Trojan sweep must alarm".into());
    }
    let forensics = expect_array(doc, "forensics")?;
    for (i, record) in forensics.iter().enumerate() {
        (|| {
            expect_u64(record, "correlation_id")?;
            expect_str(record, "kind")?;
            expect_array(record, "recent_distances")?;
            expect_array(record, "recent_spots")?;
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("forensics[{i}]: {e}"))?;
    }
    if forensics.len() != expect_u64(alarms, "total")? as usize {
        return Err("one forensic bundle per alarm required".into());
    }
    Ok(())
}

fn check_parallel(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    expect_u64(doc, "n_traces")?;
    let host_cpus = expect_u64(doc, "host_cpus")?;
    let tuned = expect(doc, "auto_tuned", "object")?;
    let tuned_workers = expect_u64(tuned, "workers")?;
    if expect_u64(tuned, "chunk_size")? == 0 {
        return Err("\"auto_tuned.chunk_size\" must be positive".into());
    }
    if tuned_workers == 0 || tuned_workers > host_cpus {
        return Err(format!(
            "\"auto_tuned.workers\" {tuned_workers} must be in 1..={host_cpus} (host_cpus)"
        ));
    }
    let results = expect_array(doc, "results")?;
    if results.is_empty() {
        return Err("\"results\" must not be empty".into());
    }
    for (i, row) in results.iter().enumerate() {
        (|| {
            expect_u64(row, "workers")?;
            let effective = expect_u64(row, "effective_workers")?;
            if effective == 0 || effective > host_cpus {
                return Err(format!(
                    "\"effective_workers\" {effective} must be in 1..={host_cpus} (host_cpus)"
                ));
            }
            expect_number(row, "seconds")?;
            expect_number(row, "traces_per_sec")?;
            expect_number(row, "speedup")?;
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("results[{i}]: {e}"))?;
    }
    let hot = expect(doc, "hot_path", "object")?;
    expect_u64(hot, "sensors")?;
    for key in [
        "synth_before_seconds",
        "synth_after_seconds",
        "scan_before_seconds",
        "scan_after_seconds",
        "before_seconds",
        "after_seconds",
    ] {
        if expect_number(hot, key)? <= 0.0 {
            return Err(format!("\"hot_path.{key}\" must be positive"));
        }
    }
    if expect_number(hot, "ratio")? <= 0.0 {
        return Err("\"hot_path.ratio\" must be positive".into());
    }
    Ok(())
}

fn expect_bool(v: &Value, key: &str) -> Result<bool, String> {
    expect(v, key, "bool")?
        .as_bool()
        .ok_or_else(|| format!("\"{key}\" must be a boolean"))
}

fn check_faults(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    expect_u64(doc, "n_golden")?;
    expect_u64(doc, "n_suspect")?;
    let default_intensity = expect_number(doc, "default_intensity")?;
    let baseline = expect(doc, "baseline", "object")?;
    expect_u64(baseline, "scored")?;
    expect_u64(baseline, "alarms")?;
    let baseline_far = expect_number(baseline, "false_alarm_rate")?;
    if !expect_bool(doc, "clean_bit_identical")? {
        return Err("\"clean_bit_identical\" must be true — the sanitizer changed alarms".into());
    }
    if !expect_bool(doc, "robust_matches_collect")? {
        return Err("\"robust_matches_collect\" must be true".into());
    }
    let scenarios = expect_array(doc, "scenarios")?;
    if scenarios.is_empty() {
        return Err("\"scenarios\" must not be empty".into());
    }
    for (i, s) in scenarios.iter().enumerate() {
        (|| {
            expect_str(s, "fault")?;
            let intensity = expect_number(s, "intensity")?;
            let traces = expect_u64(s, "traces")?;
            let clean = expect_u64(s, "clean")?;
            let degraded = expect_u64(s, "degraded")?;
            let rejected = expect_u64(s, "rejected")?;
            expect_u64(s, "scored")?;
            expect_u64(s, "alarms")?;
            let far = expect_number(s, "false_alarm_rate")?;
            expect_str(s, "health")?;
            if expect_bool(s, "panicked")? {
                return Err("\"panicked\" must be false".into());
            }
            if !expect_bool(s, "accounted")? || clean + degraded + rejected != traces {
                return Err("every trace must be accounted clean/degraded/rejected".into());
            }
            if intensity == default_intensity && far > 2.0 * baseline_far + 1e-12 {
                return Err(format!(
                    "default-intensity false-alarm rate {far} exceeds 2x baseline {baseline_far}"
                ));
            }
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("scenarios[{i}]: {e}"))?;
    }
    let recovery = expect(doc, "recovery", "object")?;
    expect_u64(recovery, "retries")?;
    expect_u64(recovery, "fallbacks")?;
    expect_u64(recovery, "backoff_total_us")?;
    if expect_u64(recovery, "rejected")? != 0 {
        return Err("\"recovery.rejected\" must be 0 — the storm must clear".into());
    }
    Ok(())
}

/// `BENCH_fleet.json`: the fleet ingestion service's chaos-run gates —
/// zero panics, bounded queue depth, quarantine isolation, and a sane
/// p99 ingest latency at 10k-chip scale.
fn check_fleet(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    let n_chips = expect_u64(doc, "n_chips")?;
    if n_chips < 10_000 {
        return Err(format!("\"n_chips\" {n_chips} is below the 10k-chip floor"));
    }
    expect_u64(doc, "n_poisoned")?;
    expect_u64(doc, "rounds")?;
    expect_u64(doc, "batch_traces")?;
    expect_u64(doc, "shards")?;
    let capacity = expect_u64(doc, "queue_capacity")?;
    let tracked = expect_u64(doc, "chips_tracked")?;
    if tracked + 100 < n_chips {
        return Err(format!(
            "\"chips_tracked\" {tracked} lost more than 100 of {n_chips} chips"
        ));
    }
    let offered = expect_u64(doc, "traces_offered")?;
    let delivered = expect_u64(doc, "traces_delivered")?;
    if delivered > 2 * offered {
        return Err(format!(
            "\"traces_delivered\" {delivered} exceeds duplication bound for {offered} offered"
        ));
    }
    expect_number(doc, "elapsed_s")?;
    if expect_number(doc, "traces_per_sec")? <= 0.0 {
        return Err("\"traces_per_sec\" must be positive".into());
    }
    expect_u64(doc, "p50_ingest_us")?;
    let p99 = expect_u64(doc, "p99_ingest_us")?;
    if p99 > 100_000 {
        return Err(format!(
            "\"p99_ingest_us\" {p99} exceeds the 100ms sanity ceiling"
        ));
    }
    expect_u64(doc, "max_ingest_us")?;
    let max_depth = expect_u64(doc, "max_queue_depth")?;
    if max_depth > capacity + 1 {
        return Err(format!(
            "\"max_queue_depth\" {max_depth} exceeds queue_capacity {capacity} (+1 transient)"
        ));
    }
    if !expect_bool(doc, "bounded_queue")? {
        return Err("\"bounded_queue\" must be true".into());
    }
    if !expect_bool(doc, "zero_panics")? {
        return Err("\"zero_panics\" must be true".into());
    }
    if !expect_bool(doc, "leakage_bit_identical")? {
        return Err(
            "\"leakage_bit_identical\" must be true — quarantine leaked into healthy chips".into(),
        );
    }
    let admissions = expect(doc, "admissions", "object")?;
    expect_u64(admissions, "admitted")?;
    expect_u64(admissions, "throttled")?;
    expect_u64(admissions, "shed")?;
    expect_u64(admissions, "quarantined")?;
    let transport = expect(doc, "transport", "object")?;
    for key in [
        "offered",
        "dropped",
        "duplicated",
        "reordered",
        "corrupted",
        "delivered",
        "delay_us",
    ] {
        expect_u64(transport, key)?;
    }
    let store = expect(doc, "store", "object")?;
    for key in ["fits", "refits", "evictions", "hot", "cold"] {
        expect_u64(store, key)?;
    }
    let breakers = expect(doc, "breakers", "object")?;
    if expect_u64(breakers, "tripped_chips")? == 0 {
        return Err("\"breakers.tripped_chips\" must be > 0 — the poison cohort must trip".into());
    }
    expect_u64(breakers, "refusals")?;
    expect_number(doc, "alarm_rate")?;
    let probe = expect(doc, "leakage_probe", "object")?;
    expect_u64(probe, "healthy_chips")?;
    if !expect_bool(probe, "victim_tripped")? {
        return Err("\"leakage_probe.victim_tripped\" must be true".into());
    }
    if !expect_bool(probe, "bit_identical")? {
        return Err("\"leakage_probe.bit_identical\" must be true".into());
    }
    Ok(())
}

fn check_pipeline(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    expect_u64(doc, "n_traces")?;
    expect_u64(doc, "repeats")?;
    expect_number(doc, "monitor_seconds")?;
    expect_number(doc, "pipeline_seconds")?;
    let overhead = expect_number(doc, "overhead_pct")?;
    if overhead > 2.0 {
        return Err(format!(
            "\"overhead_pct\" {overhead} exceeds the 2% pipeline budget"
        ));
    }
    if !expect_bool(doc, "alarms_equal")? {
        return Err("\"alarms_equal\" must be true — the pipeline changed alarms".into());
    }
    expect_u64(doc, "alarm_count")?;
    Ok(())
}

fn check_localization(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    let rows = expect_u64(doc, "rows")?;
    let cols = expect_u64(doc, "cols")?;
    if expect_u64(doc, "sensors")? != rows * cols {
        return Err("\"sensors\" must equal rows * cols".into());
    }
    expect_u64(doc, "turns")?;
    expect_u64(doc, "n_golden")?;
    expect_u64(doc, "n_suspect_per_trojan")?;
    expect_number(doc, "single_seconds")?;
    expect_number(doc, "array_seconds")?;
    expect_number(doc, "per_sensor_overhead_pct")?;
    let hit1 = expect_u64(doc, "hit_at_1")?;
    let hit3 = expect_u64(doc, "hit_at_3")?;
    let trojans = expect_array(doc, "trojans")?;
    if trojans.len() != 4 {
        return Err("\"trojans\" must cover all four digital Trojans".into());
    }
    for (i, t) in trojans.iter().enumerate() {
        (|| {
            expect_str(t, "trojan")?;
            expect_str(t, "region")?;
            expect_str(t, "top_region")?;
            expect_bool(t, "hit1")?;
            expect_bool(t, "hit3")?;
            expect_number(t, "alarm_rate")?;
            expect_number(t, "centroid_x_um")?;
            expect_number(t, "centroid_y_um")?;
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("trojans[{i}]: {e}"))?;
    }
    if hit3 != trojans.len() as u64 {
        return Err(format!(
            "\"hit_at_3\" {hit3} — every Trojan must localize within the top-3 regions"
        ));
    }
    if hit1 < 2 {
        return Err(format!(
            "\"hit_at_1\" {hit1} — at least two Trojans must localize at rank 1"
        ));
    }
    // Cell-level attribution section (leave-one-Trojan-out).
    let auroc_gate = expect_number(doc, "auroc_gate")?;
    let auroc_passing = expect_u64(doc, "auroc_passing")?;
    let attribution = expect_array(doc, "attribution")?;
    if attribution.len() != 4 {
        return Err("\"attribution\" must hold one fold per digital Trojan".into());
    }
    let mut passing = 0u64;
    for (i, fold) in attribution.iter().enumerate() {
        (|| {
            expect_str(fold, "trojan")?;
            expect_str(fold, "region")?;
            let cells = expect_u64(fold, "cells")?;
            let true_cells = expect_u64(fold, "true_cells")?;
            if true_cells == 0 || true_cells >= cells {
                return Err("\"true_cells\" must be a non-empty strict subset of cells".into());
            }
            for key in [
                "precision_at_10",
                "precision_at_50",
                "recall_at_50",
                "auroc",
                "iou",
            ] {
                let v = expect_number(fold, key)?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("\"{key}\" {v} must lie in [0, 1]"));
                }
            }
            if expect_number(fold, "auroc")? > auroc_gate {
                passing += 1;
            }
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("attribution[{i}]: {e}"))?;
    }
    if passing != auroc_passing {
        return Err(format!(
            "\"auroc_passing\" {auroc_passing} disagrees with the folds (counted {passing})"
        ));
    }
    if auroc_passing < 3 {
        return Err(format!(
            "\"auroc_passing\" {auroc_passing} — held-out AUROC must exceed {auroc_gate} \
             on at least 3 of 4 Trojans"
        ));
    }
    Ok(())
}

fn check_reference_free(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    expect_u64(doc, "n_warmup")?;
    expect_u64(doc, "n_eval")?;
    expect_u64(doc, "n_suspect_per_trojan")?;
    expect_number(doc, "mad_multiplier")?;
    if expect_u64(doc, "golden_traces_used")? != 0 {
        return Err("\"golden_traces_used\" must be 0 — the experiment is reference-free".into());
    }
    if !expect_bool(doc, "reference_free")? {
        return Err("\"reference_free\" must be true".into());
    }
    if expect_u64(doc, "warmup_alarms")? != 0 {
        return Err("\"warmup_alarms\" must be 0 — nothing may alarm while calibrating".into());
    }
    expect_number(doc, "false_alarm_rate_selfcal")?;
    expect_number(doc, "false_alarm_rate_golden")?;
    expect_number(doc, "false_alarm_gap")?;
    let detected = expect_u64(doc, "detected")?;
    let trojans = expect_array(doc, "trojans")?;
    if trojans.len() != 4 {
        return Err("\"trojans\" must cover all four digital Trojans".into());
    }
    let mut detected_rows = 0u64;
    for (i, t) in trojans.iter().enumerate() {
        (|| {
            expect_str(t, "trojan")?;
            expect_number(t, "alarm_rate_selfcal")?;
            expect_number(t, "alarm_rate_golden")?;
            detected_rows += u64::from(expect_bool(t, "detected")?);
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("trojans[{i}]: {e}"))?;
    }
    if detected != detected_rows {
        return Err(format!(
            "\"detected\" {detected} disagrees with the per-Trojan rows ({detected_rows})"
        ));
    }
    if detected < 3 {
        return Err(format!(
            "\"detected\" {detected} — at least 3 of 4 Trojans must be caught with zero golden traces"
        ));
    }
    Ok(())
}

fn check_forensics(doc: &Value) -> Result<(), String> {
    check_provenance(doc)?;
    expect_u64(doc, "n_golden")?;
    expect_u64(doc, "window_blocks")?;
    let pre = expect_u64(doc, "pre_windows")?;
    let post = expect_u64(doc, "post_windows")?;
    expect_u64(doc, "correlation_id")?;
    let records = expect_u64(doc, "flight_records")?;
    let trigger = expect_u64(doc, "trigger_offset")?;
    if records != pre + 1 + post {
        return Err(format!(
            "\"flight_records\" {records} must equal pre + trigger + post ({})",
            pre + 1 + post
        ));
    }
    if trigger != pre {
        return Err(format!(
            "\"trigger_offset\" {trigger} must equal \"pre_windows\" {pre} — \
             the pre-context must be fully frozen"
        ));
    }
    if !expect_bool(doc, "trigger_alarmed")? {
        return Err("\"trigger_alarmed\" must be true".into());
    }
    if expect_number(doc, "trigger_margin")? <= 0.0 {
        return Err("\"trigger_margin\" must be positive — the firing detector's evidence".into());
    }
    if expect_u64(doc, "decision_count")? == 0 {
        return Err("\"decision_count\" must be > 0".into());
    }
    if expect_u64(doc, "rejected_count")? == 0 {
        return Err("\"rejected_count\" must be > 0 — the defective trace must log".into());
    }
    let rows = expect_u64(doc, "array_rows")?;
    let cols = expect_u64(doc, "array_cols")?;
    if !expect_bool(doc, "array_alarmed")? {
        return Err("\"array_alarmed\" must be true — the armed campaign must alarm".into());
    }
    let tiles = expect_array(doc, "tiles")?;
    if tiles.len() as u64 != rows * cols {
        return Err("one \"tiles\" entry per array tile required".into());
    }
    for (i, t) in tiles.iter().enumerate() {
        (|| {
            expect_u64(t, "row")?;
            expect_u64(t, "col")?;
            expect_number(t, "margin")?;
            expect_number(t, "alarm_rate")?;
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("tiles[{i}]: {e}"))?;
    }
    Ok(())
}

/// Validates one decision-log line, returning whether it carries a
/// fused alarm.
fn check_decision_line(rec: &Value) -> Result<bool, String> {
    let domain = expect_str(rec, "domain")?;
    if !matches!(domain, "trace" | "window" | "array" | "fleet") {
        return Err(format!("unknown decision domain \"{domain}\""));
    }
    let verdict = expect_str(rec, "verdict")?;
    if verdict == "rejected" {
        expect_str(rec, "reject_reason")?;
    }
    expect_str(rec, "health")?;
    let detectors = expect_array(rec, "detectors")?;
    for (i, d) in detectors.iter().enumerate() {
        (|| {
            expect_str(d, "detector")?;
            expect_number(d, "statistic")?;
            expect_number(d, "threshold")?;
            expect_number(d, "margin")?;
            expect_bool(d, "suspected")?;
            Ok::<(), String>(())
        })()
        .map_err(|e| format!("detectors[{i}]: {e}"))?;
    }
    let fused = expect_bool(rec, "fused_alarm")?;
    if fused && domain != "array" {
        expect_u64(rec, "correlation_id")?;
    }
    if let Some(tiles) = rec.get("tiles") {
        let tiles = tiles
            .as_array()
            .ok_or_else(|| "\"tiles\" must be an array".to_string())?;
        for (i, t) in tiles.iter().enumerate() {
            (|| {
                expect_u64(t, "row")?;
                expect_u64(t, "col")?;
                expect_number(t, "margin")?;
                expect_number(t, "alarm_rate")?;
                Ok::<(), String>(())
            })()
            .map_err(|e| format!("tiles[{i}]: {e}"))?;
        }
    }
    Ok(fused)
}

fn check_jsonl_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let mut records = 0usize;
    let mut alarmed = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let fused = check_decision_line(&rec).map_err(|e| format!("line {}: {e}", i + 1))?;
        records += 1;
        alarmed += usize::from(fused);
    }
    if records == 0 {
        return Err("the decision log must not be empty".into());
    }
    if alarmed == 0 {
        return Err("the decision log must contain at least one fused alarm".into());
    }
    Ok(())
}

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| e.to_string())?;
    match expect_str(&doc, "benchmark")? {
        "telemetry_table1_sweep" => check_telemetry(&doc),
        "golden_collect_fit" => check_parallel(&doc),
        "fault_injection_sweep" => check_faults(&doc),
        "fleet_ingestion" => check_fleet(&doc),
        "pipeline_overhead" => check_pipeline(&doc),
        "localization" => check_localization(&doc),
        "reference_free" => check_reference_free(&doc),
        "forensics" => check_forensics(&doc),
        other => Err(format!("unknown benchmark kind \"{other}\"")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jsonl = false;
    let mut failed = false;
    let mut checked = 0usize;
    for arg in &args {
        if arg == "--jsonl" {
            jsonl = true;
            continue;
        }
        checked += 1;
        let result = if jsonl {
            check_jsonl_file(arg)
        } else {
            check_file(arg)
        };
        match result {
            Ok(()) => println!("{arg}: ok"),
            Err(e) => {
                eprintln!("{arg}: FAIL — {e}");
                failed = true;
            }
        }
    }
    if checked == 0 {
        eprintln!("usage: check_bench_schema <file.json>... [--jsonl <file.jsonl>...]");
        std::process::exit(2);
    }
    std::process::exit(if failed { 1 } else { 0 });
}
