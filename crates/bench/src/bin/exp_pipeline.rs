#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Overhead of the staged detection pipeline against the legacy
//! `TrustMonitor` ingest path, on the same mixed golden/Trojan workload.
//!
//! The monitor is itself a thin wrapper over a [`DetectionPipeline`]
//! with a single Euclidean detector under Or-fusion, so the bare
//! pipeline must (a) raise alarms on exactly the same trace indices and
//! (b) stay within 2 % of the wrapper's wall-clock — the budget
//! `check_bench_schema` enforces on `BENCH_pipeline.json`.
//!
//! Both paths are timed best-of-`REPEATS` on fresh instances (alarm
//! logs and health state start empty every repeat), with the workload
//! collected once up front so acquisition never pollutes the timing.

use emtrust::acquisition::TestBench;
use emtrust::detector::EuclideanDetector;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::{Alarm, DetectionPipeline, FusionPolicy, TrustMonitor};
use emtrust_bench::{ArtifactDoc, OrExit, Report, EXPERIMENT_KEY};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use std::time::Instant;

const N_GOLDEN: usize = 32;
const N_SUSPECT: usize = 256;
const REPEATS: usize = 20;

/// The mixed workload: first half golden traffic, second half with the
/// T4 performance-degrader Trojan armed.
fn workload(chip: &ProtectedChip) -> (GoldenFingerprint, Vec<Vec<f64>>) {
    let bench = TestBench::simulation(chip).or_exit("simulation bench");
    let golden = bench
        .collect(EXPERIMENT_KEY, N_GOLDEN, None, Channel::OnChipSensor, 42)
        .or_exit("golden collection");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).or_exit("golden fit");
    // The clean half reuses the golden seed so its fixed plaintext
    // matches the fingerprint's; a different stimulus would alarm on
    // data-dependent energy, not on the Trojan.
    let mut traces = bench
        .collect(
            EXPERIMENT_KEY,
            N_SUSPECT / 2,
            None,
            Channel::OnChipSensor,
            42,
        )
        .or_exit("clean suspects")
        .traces()
        .to_vec();
    traces.extend_from_slice(
        bench
            .collect(
                EXPERIMENT_KEY,
                N_SUSPECT / 2,
                Some(TrojanKind::T4PowerDegrader),
                Channel::OnChipSensor,
                44,
            )
            .or_exit("armed suspects")
            .traces(),
    );
    (fp, traces)
}

fn time_monitor(fp: &GoldenFingerprint, traces: &[Vec<f64>]) -> (f64, Vec<u64>) {
    let mut best = f64::INFINITY;
    let mut indices = Vec::new();
    for _ in 0..REPEATS {
        let mut monitor = TrustMonitor::builder(fp.clone()).build();
        let t0 = Instant::now();
        let alarms = monitor.ingest_batch(traces).or_exit("monitor ingest");
        let elapsed = t0.elapsed().as_secs_f64();
        best = best.min(elapsed);
        indices = alarms
            .iter()
            .filter_map(|a| match a {
                Alarm::TimeDomain { trace_index, .. } => Some(*trace_index),
                _ => None,
            })
            .collect();
    }
    (best, indices)
}

fn time_pipeline(fp: &GoldenFingerprint, traces: &[Vec<f64>]) -> (f64, Vec<u64>) {
    let mut best = f64::INFINITY;
    let mut indices = Vec::new();
    for _ in 0..REPEATS {
        let mut pipeline = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::new(fp.clone())))
            .fusion(FusionPolicy::Or)
            .build();
        let t0 = Instant::now();
        let batch = pipeline.try_ingest_batch(traces).or_exit("pipeline ingest");
        let elapsed = t0.elapsed().as_secs_f64();
        best = best.min(elapsed);
        indices = batch.alarms.iter().map(|a| a.index).collect();
    }
    (best, indices)
}

fn main() {
    let mut report = Report::from_env("exp_pipeline");
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let (fp, traces) = workload(&chip);

    let (monitor_seconds, monitor_alarms) = time_monitor(&fp, &traces);
    let (pipeline_seconds, pipeline_alarms) = time_pipeline(&fp, &traces);
    let alarms_equal = monitor_alarms == pipeline_alarms;
    let overhead_pct = 100.0 * (pipeline_seconds - monitor_seconds) / monitor_seconds;

    assert!(
        !monitor_alarms.is_empty(),
        "the armed half of the workload must alarm"
    );
    assert!(
        alarms_equal,
        "pipeline alarms {pipeline_alarms:?} != monitor alarms {monitor_alarms:?}"
    );

    report.table(
        &format!("Pipeline overhead vs legacy monitor ({N_SUSPECT} traces, best of {REPEATS})"),
        &["path", "seconds", "alarms"],
        &[
            vec![
                "TrustMonitor::ingest_batch".into(),
                format!("{monitor_seconds:.6}"),
                monitor_alarms.len().to_string(),
            ],
            vec![
                "DetectionPipeline::try_ingest_batch".into(),
                format!("{pipeline_seconds:.6}"),
                pipeline_alarms.len().to_string(),
            ],
        ],
    );
    report.scalar("monitor_seconds", monitor_seconds);
    report.scalar("pipeline_seconds", pipeline_seconds);
    report.scalar("overhead_pct", overhead_pct);

    ArtifactDoc::new("pipeline_overhead")
        .field_u64("n_traces", N_SUSPECT as u64)
        .field_u64("repeats", REPEATS as u64)
        .field_f64("monitor_seconds", monitor_seconds)
        .field_f64("pipeline_seconds", pipeline_seconds)
        .field_f64("overhead_pct", overhead_pct)
        .field_bool("alarms_equal", alarms_equal)
        .field_u64("alarm_count", pipeline_alarms.len() as u64)
        .write("BENCH_pipeline.json", &mut report);
    report.finish();
}
