#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **Observability — telemetry overhead and alarm forensics**: replays
//! the Table-1 Trojan sweep (golden fit, all four digital Trojans, one
//! spectral window) twice — once with no recorder installed (the
//! `NullRecorder` fast path) and once under the full
//! [`InMemoryRecorder`] — and writes:
//!
//! - `BENCH_telemetry.json` — per-stage latency breakdown, recorder
//!   overhead, alarm summary and the forensic bundles;
//! - `TELEMETRY_prometheus.txt` — the Prometheus text-exposition
//!   snapshot of the recorded run;
//! - `TELEMETRY_events.jsonl` — the structured event log (one JSON
//!   object per line; every alarm appears with its correlation id).
//!
//! The disabled path is the paper's "no runtime performance
//! degradation" claim applied to our own instrumentation: with no
//! recorder installed every probe costs one relaxed atomic load, so the
//! sweep must stay within ~2 % of its uninstrumented time.
//!
//! [`InMemoryRecorder`]: emtrust::telemetry::InMemoryRecorder

use emtrust::acquisition::TestBench;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::parallel::ParallelConfig;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust::telemetry::sink::{events_jsonl, json_escape, json_number, prometheus_text};
use emtrust::telemetry::{self, InMemoryRecorder};
use emtrust::TrustError;
use emtrust::TrustMonitor;
use emtrust_bench::{
    standard_chip, write_artifact, ArtifactDoc, OrExit, Report, EXPERIMENT_KEY, TROJANS,
};
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;
use std::sync::Arc;
use std::time::Instant;

const N_GOLDEN: usize = 16;
const N_SUSPECT_PER_TROJAN: usize = 4;
const WINDOW_BLOCKS: usize = 24;
const WORKERS: usize = 2;

/// One full Table-1 sweep: fit on golden traces, screen every Trojan's
/// suspect batch through the monitor, then one spectral window with the
/// noisiest register-bank Trojan armed.
fn run_sweep(chip: &ProtectedChip) -> Result<TrustMonitor, TrustError> {
    let pool = ParallelConfig::default().with_workers(WORKERS);
    let bench = TestBench::simulation(chip)?.with_parallel(pool);
    let config = FingerprintConfig {
        pca_components: None,
        parallel: pool,
        ..FingerprintConfig::default()
    };
    let golden = bench.collect(EXPERIMENT_KEY, N_GOLDEN, None, Channel::OnChipSensor, 0x7E1)?;
    let fp = GoldenFingerprint::fit(&golden, config)?;
    let golden_window = bench.collect_continuous(
        EXPERIMENT_KEY,
        WINDOW_BLOCKS,
        None,
        Channel::OnChipSensor,
        0x7E2,
    )?;
    let detector = SpectralDetector::fit(&golden_window, SpectralConfig::default())?;
    let mut monitor = TrustMonitor::builder(fp).with_spectral(detector).build();
    for (i, kind) in TROJANS.into_iter().enumerate() {
        let suspects = bench.collect(
            EXPERIMENT_KEY,
            N_SUSPECT_PER_TROJAN,
            Some(kind),
            Channel::OnChipSensor,
            0x7E3 + i as u64,
        )?;
        monitor.ingest_batch(suspects.traces())?;
    }
    let armed_window = bench.collect_continuous(
        EXPERIMENT_KEY,
        WINDOW_BLOCKS,
        Some(TROJANS[3]),
        Channel::OnChipSensor,
        0x7E2,
    )?;
    monitor.ingest_window(&armed_window)?;
    Ok(monitor)
}

fn main() {
    let mut report = Report::from_env("exp_telemetry");
    let chip = standard_chip();

    // Pass 1 — no recorder installed: every instrumentation point takes
    // the one-atomic-load fast path.
    telemetry::uninstall();
    let t0 = Instant::now();
    let null_monitor = run_sweep(&chip).or_exit("null-recorder sweep");
    let null_seconds = t0.elapsed().as_secs_f64();

    // Pass 2 — full in-memory registry installed.
    let registry = Arc::new(InMemoryRecorder::new());
    telemetry::install(registry.clone());
    let t0 = Instant::now();
    let monitor = run_sweep(&chip).or_exit("recorded sweep");
    let recorded_seconds = t0.elapsed().as_secs_f64();
    telemetry::uninstall();

    // Both passes must detect identically — telemetry observes, it never
    // steers.
    assert_eq!(
        null_monitor.alarms(),
        monitor.alarms(),
        "recorded run must raise exactly the alarms of the null run"
    );
    assert!(
        !monitor.alarms().is_empty(),
        "the Trojan sweep must raise alarms"
    );

    let overhead_pct = 100.0 * (recorded_seconds - null_seconds) / null_seconds;
    let snapshot = registry.snapshot();

    let mut stage_rows = Vec::new();
    let mut stage_json = Vec::new();
    for (path, h) in &snapshot.spans {
        stage_rows.push(vec![
            path.clone(),
            h.count.to_string(),
            format!("{:.3}", h.sum / 1e6),
            format!("{:.3}", h.mean() / 1e6),
            format!("{:.3}", h.max / 1e6),
        ]);
        stage_json.push(format!(
            "    {{\"span\": \"{}\", \"count\": {}, \"total_ns\": {}, \
             \"mean_ns\": {}, \"max_ns\": {}}}",
            json_escape(path),
            h.count,
            json_number(h.sum),
            json_number(h.mean()),
            json_number(h.max)
        ));
    }
    report.table(
        "Per-stage latency breakdown (recorded pass)",
        &["span", "count", "total ms", "mean ms", "max ms"],
        &stage_rows,
    );

    let time_domain = monitor
        .alarms()
        .iter()
        .filter(|a| matches!(a, emtrust::Alarm::TimeDomain { .. }))
        .count();
    let spectral = monitor.alarms().len() - time_domain;
    let first_correlation_id = monitor.alarms()[0].correlation_id();
    report.table(
        "Sweep summary",
        &["metric", "value"],
        &[
            vec!["null pass (s)".into(), format!("{null_seconds:.3}")],
            vec!["recorded pass (s)".into(), format!("{recorded_seconds:.3}")],
            vec!["recorder overhead".into(), format!("{overhead_pct:+.2}%")],
            vec!["alarms".into(), monitor.alarms().len().to_string()],
            vec!["  time-domain".into(), time_domain.to_string()],
            vec!["  spectral".into(), spectral.to_string()],
            vec![
                "first correlation id".into(),
                first_correlation_id.to_string(),
            ],
        ],
    );
    report.scalar("null_seconds", null_seconds);
    report.scalar("recorded_seconds", recorded_seconds);
    report.scalar("overhead_pct", overhead_pct);
    report.scalar("alarm_count", monitor.alarms().len() as f64);

    let forensics: Vec<String> = monitor
        .forensics()
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let doc = ArtifactDoc::new("telemetry_table1_sweep")
        .field_u64("n_golden", N_GOLDEN as u64)
        .field_u64("n_suspect_per_trojan", N_SUSPECT_PER_TROJAN as u64)
        .field_f64("null_seconds", null_seconds)
        .field_f64("recorded_seconds", recorded_seconds)
        .field_f64("overhead_pct", overhead_pct)
        .field_array("stages", &stage_json)
        .field_raw(
            "alarms",
            format!(
                "{{\"total\": {}, \"time_domain\": {time_domain}, \
                 \"spectral\": {spectral}, \"first_correlation_id\": {first_correlation_id}}}",
                monitor.alarms().len()
            ),
        )
        .field_array("forensics", &forensics);
    write_artifact("BENCH_telemetry.json", &doc.to_json());
    write_artifact("TELEMETRY_prometheus.txt", &prometheus_text(&snapshot));
    write_artifact("TELEMETRY_events.jsonl", &events_jsonl(&registry.events()));
    report.note("\nwrote BENCH_telemetry.json, TELEMETRY_prometheus.txt, TELEMETRY_events.jsonl");
    report.finish();
}
