#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **Observability — telemetry overhead and alarm forensics**: replays
//! the Table-1 Trojan sweep (golden fit, all four digital Trojans, one
//! spectral window) twice — once with no recorder installed (the
//! `NullRecorder` fast path) and once under the full
//! [`InMemoryRecorder`] — and writes:
//!
//! - `BENCH_telemetry.json` — per-stage latency breakdown, recorder
//!   overhead, alarm summary and the forensic bundles;
//! - `TELEMETRY_prometheus.txt` — the Prometheus text-exposition
//!   snapshot of the fully-labeled forensic run;
//! - `TELEMETRY_events.jsonl` — the structured event log (one JSON
//!   object per line; every alarm appears with its correlation id);
//! - `TELEMETRY_profile.folded` — flamegraph-compatible folded stacks
//!   of the span-tree profile.
//!
//! Four passes over the identical sweep pin the overhead envelope:
//!
//! 1. no recorder, no labels — the `NullRecorder` fast-path baseline;
//! 2. recorder installed, unlabeled — the legacy `overhead_pct`;
//! 3. labels configured but **no recorder** — the disabled path must
//!    stay within 2 % of pass 1 (every labeled probe short-circuits on
//!    one relaxed atomic load);
//! 4. recorder + labels + decision forensics + flight recorder — the
//!    fully-enabled plane must stay within 5 % of pass 1.
//!
//! The disabled path is the paper's "no runtime performance
//! degradation" claim applied to our own instrumentation.
//!
//! [`InMemoryRecorder`]: emtrust::telemetry::InMemoryRecorder

use emtrust::acquisition::TestBench;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::parallel::ParallelConfig;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust::telemetry::sink::{events_jsonl, json_escape, json_number, prometheus_text};
use emtrust::telemetry::{self, ForensicsConfig, InMemoryRecorder, SpanProfile};
use emtrust::TrustError;
use emtrust::TrustMonitor;
use emtrust_bench::{
    standard_chip, write_artifact, ArtifactDoc, OrExit, Report, EXPERIMENT_KEY, TROJANS,
};
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;
use std::sync::Arc;
use std::time::Instant;

const N_GOLDEN: usize = 16;
const N_SUSPECT_PER_TROJAN: usize = 4;
const WINDOW_BLOCKS: usize = 24;
const WORKERS: usize = 2;

/// One full Table-1 sweep: fit on golden traces, screen every Trojan's
/// suspect batch through the monitor, then one spectral window with the
/// noisiest register-bank Trojan armed. `labeled` stamps a `chip_id`
/// identity label on the monitor; `forensic` additionally enables the
/// decision log and alarm flight recorder.
fn run_sweep(
    chip: &ProtectedChip,
    labeled: bool,
    forensic: bool,
) -> Result<TrustMonitor, TrustError> {
    let pool = ParallelConfig::default().with_workers(WORKERS);
    let bench = TestBench::simulation(chip)?.with_parallel(pool);
    let config = FingerprintConfig {
        pca_components: None,
        parallel: pool,
        ..FingerprintConfig::default()
    };
    let golden = bench.collect(EXPERIMENT_KEY, N_GOLDEN, None, Channel::OnChipSensor, 0x7E1)?;
    let fp = GoldenFingerprint::fit(&golden, config)?;
    let golden_window = bench.collect_continuous(
        EXPERIMENT_KEY,
        WINDOW_BLOCKS,
        None,
        Channel::OnChipSensor,
        0x7E2,
    )?;
    let detector = SpectralDetector::fit(&golden_window, SpectralConfig::default())?;
    let mut builder = TrustMonitor::builder(fp).with_spectral(detector);
    if labeled {
        builder = builder.with_chip_id("chip0");
    }
    if forensic {
        builder = builder.with_forensics(ForensicsConfig::default());
    }
    let mut monitor = builder.build();
    for (i, kind) in TROJANS.into_iter().enumerate() {
        let suspects = bench.collect(
            EXPERIMENT_KEY,
            N_SUSPECT_PER_TROJAN,
            Some(kind),
            Channel::OnChipSensor,
            0x7E3 + i as u64,
        )?;
        monitor.ingest_batch(suspects.traces())?;
    }
    let armed_window = bench.collect_continuous(
        EXPERIMENT_KEY,
        WINDOW_BLOCKS,
        Some(TROJANS[3]),
        Channel::OnChipSensor,
        0x7E2,
    )?;
    monitor.ingest_window(&armed_window)?;
    Ok(monitor)
}

fn main() {
    let mut report = Report::from_env("exp_telemetry");
    let chip = standard_chip();

    // Pass 1 — no recorder installed: every instrumentation point takes
    // the one-atomic-load fast path.
    telemetry::uninstall();
    let t0 = Instant::now();
    let null_monitor = run_sweep(&chip, false, false).or_exit("null-recorder sweep");
    let null_seconds = t0.elapsed().as_secs_f64();

    // Pass 2 — full in-memory registry installed.
    let registry = Arc::new(InMemoryRecorder::new());
    telemetry::install(registry.clone());
    let t0 = Instant::now();
    let monitor = run_sweep(&chip, false, false).or_exit("recorded sweep");
    let recorded_seconds = t0.elapsed().as_secs_f64();
    telemetry::uninstall();

    // Pass 3 — labels configured but no recorder: the disabled path of
    // the labeled plane must still be a near-no-op.
    let t0 = Instant::now();
    let disabled_monitor = run_sweep(&chip, true, false).or_exit("disabled labeled sweep");
    let disabled_seconds = t0.elapsed().as_secs_f64();

    // Pass 4 — everything on: recorder, identity labels, decision
    // forensics and the alarm flight recorder.
    let forensic_registry = Arc::new(InMemoryRecorder::new());
    telemetry::install(forensic_registry.clone());
    let t0 = Instant::now();
    let mut forensic_monitor = run_sweep(&chip, true, true).or_exit("forensic sweep");
    let forensic_seconds = t0.elapsed().as_secs_f64();
    telemetry::uninstall();
    forensic_monitor.seal_flight_windows();

    // Every pass must detect identically — telemetry observes, it never
    // steers.
    for (other, name) in [
        (&monitor, "recorded"),
        (&disabled_monitor, "disabled-labeled"),
        (&forensic_monitor, "forensic"),
    ] {
        assert_eq!(
            null_monitor.alarms(),
            other.alarms(),
            "{name} run must raise exactly the alarms of the null run"
        );
    }
    assert!(
        !monitor.alarms().is_empty(),
        "the Trojan sweep must raise alarms"
    );

    let overhead_pct = 100.0 * (recorded_seconds - null_seconds) / null_seconds;
    let disabled_overhead_pct = 100.0 * (disabled_seconds - null_seconds) / null_seconds;
    let forensics_overhead_pct = 100.0 * (forensic_seconds - null_seconds) / null_seconds;
    let snapshot = registry.snapshot();
    let forensic_snapshot = forensic_registry.snapshot();

    let mut stage_rows = Vec::new();
    let mut stage_json = Vec::new();
    for (path, h) in &snapshot.spans {
        stage_rows.push(vec![
            path.clone(),
            h.count.to_string(),
            format!("{:.3}", h.sum / 1e6),
            format!("{:.3}", h.mean() / 1e6),
            format!("{:.3}", h.max / 1e6),
        ]);
        stage_json.push(format!(
            "    {{\"span\": \"{}\", \"count\": {}, \"total_ns\": {}, \
             \"mean_ns\": {}, \"max_ns\": {}}}",
            json_escape(path),
            h.count,
            json_number(h.sum),
            json_number(h.mean()),
            json_number(h.max)
        ));
    }
    report.table(
        "Per-stage latency breakdown (recorded pass)",
        &["span", "count", "total ms", "mean ms", "max ms"],
        &stage_rows,
    );

    let time_domain = monitor
        .alarms()
        .iter()
        .filter(|a| matches!(a, emtrust::Alarm::TimeDomain { .. }))
        .count();
    let spectral = monitor.alarms().len() - time_domain;
    let first_correlation_id = monitor.alarms()[0].correlation_id();
    report.table(
        "Sweep summary",
        &["metric", "value"],
        &[
            vec!["null pass (s)".into(), format!("{null_seconds:.3}")],
            vec!["recorded pass (s)".into(), format!("{recorded_seconds:.3}")],
            vec!["recorder overhead".into(), format!("{overhead_pct:+.2}%")],
            vec![
                "disabled labeled pass (s)".into(),
                format!("{disabled_seconds:.3}"),
            ],
            vec![
                "disabled overhead".into(),
                format!("{disabled_overhead_pct:+.2}%"),
            ],
            vec!["forensic pass (s)".into(), format!("{forensic_seconds:.3}")],
            vec![
                "forensic overhead".into(),
                format!("{forensics_overhead_pct:+.2}%"),
            ],
            vec!["alarms".into(), monitor.alarms().len().to_string()],
            vec!["  time-domain".into(), time_domain.to_string()],
            vec!["  spectral".into(), spectral.to_string()],
            vec![
                "first correlation id".into(),
                first_correlation_id.to_string(),
            ],
            vec![
                "decision records".into(),
                forensic_monitor.decisions().len().to_string(),
            ],
            vec![
                "flight windows".into(),
                forensic_monitor.flight_windows().len().to_string(),
            ],
        ],
    );
    report.scalar("null_seconds", null_seconds);
    report.scalar("recorded_seconds", recorded_seconds);
    report.scalar("overhead_pct", overhead_pct);
    report.scalar("disabled_overhead_pct", disabled_overhead_pct);
    report.scalar("forensics_overhead_pct", forensics_overhead_pct);
    report.scalar("alarm_count", monitor.alarms().len() as f64);

    // Span-tree profile of the fully-enabled pass: hottest self-time
    // nodes, plus the folded-stacks artifact for flamegraph tooling.
    let profile = SpanProfile::from_snapshot(&forensic_snapshot);
    let hot_rows: Vec<Vec<String>> = profile
        .hottest(6)
        .into_iter()
        .map(|n| {
            vec![
                n.path.clone(),
                n.count.to_string(),
                format!("{:.3}", n.total_ns / 1e6),
                format!("{:.3}", n.self_ns / 1e6),
            ]
        })
        .collect();
    report.table(
        "Hottest spans by self time (forensic pass)",
        &["span", "calls", "total ms", "self ms"],
        &hot_rows,
    );

    let forensics: Vec<String> = monitor
        .forensics()
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let labeled_series: usize = forensic_snapshot
        .labeled_counters
        .values()
        .map(|f| f.len())
        .sum::<usize>()
        + forensic_snapshot
            .labeled_gauges
            .values()
            .map(|f| f.len())
            .sum::<usize>()
        + forensic_snapshot
            .labeled_histograms
            .values()
            .map(|f| f.len())
            .sum::<usize>();
    let doc = ArtifactDoc::new("telemetry_table1_sweep")
        .field_u64("n_golden", N_GOLDEN as u64)
        .field_u64("n_suspect_per_trojan", N_SUSPECT_PER_TROJAN as u64)
        .field_f64("null_seconds", null_seconds)
        .field_f64("recorded_seconds", recorded_seconds)
        .field_f64("overhead_pct", overhead_pct)
        .field_f64("disabled_seconds", disabled_seconds)
        .field_f64("disabled_overhead_pct", disabled_overhead_pct)
        .field_f64("forensic_seconds", forensic_seconds)
        .field_f64("forensics_overhead_pct", forensics_overhead_pct)
        .field_u64("decision_count", forensic_monitor.decisions().len() as u64)
        .field_u64(
            "flight_window_count",
            forensic_monitor.flight_windows().len() as u64,
        )
        .field_u64("labeled_series", labeled_series as u64)
        .field_u64("series_overflowed", forensic_snapshot.series_overflowed)
        .field_array("stages", &stage_json)
        .field_raw(
            "alarms",
            format!(
                "{{\"total\": {}, \"time_domain\": {time_domain}, \
                 \"spectral\": {spectral}, \"first_correlation_id\": {first_correlation_id}}}",
                monitor.alarms().len()
            ),
        )
        .field_array("forensics", &forensics);
    write_artifact("BENCH_telemetry.json", &doc.to_json());
    // The exposition artifact comes from the fully-enabled pass so the
    // labeled series, quantiles, and self-metrics all appear; the
    // unlabeled pass-2 snapshot is still what the stage table reads.
    write_artifact(
        "TELEMETRY_prometheus.txt",
        &prometheus_text(&forensic_snapshot),
    );
    write_artifact(
        "TELEMETRY_events.jsonl",
        &events_jsonl(&forensic_registry.events()),
    );
    write_artifact("TELEMETRY_profile.folded", &profile.folded());
    report.note(
        "\nwrote BENCH_telemetry.json, TELEMETRY_prometheus.txt, \
         TELEMETRY_events.jsonl, TELEMETRY_profile.folded",
    );
    report.finish();
}
