#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **Robustness — sensor fault-injection sweep**: drives the golden
//! (Trojan-free) chip through every [`FaultKind`] at three intensities
//! with the sanitized monitor in front of the fingerprint, and writes
//! `BENCH_faults.json` with the per-scenario accounting. The claims the
//! artifact carries, all asserted here before the file is written:
//!
//! - **zero panics** — every scenario runs under `catch_unwind`;
//! - **100 % accounting** — every collected trace ends up exactly one
//!   of clean / degraded / rejected;
//! - **no silent detector drift** — with no faults installed, the
//!   sanitized monitor raises bit-identical alarms to the plain one and
//!   [`TestBench::collect_robust`] returns the exact `collect` set;
//! - **bounded false-alarm inflation** — at the default intensity
//!   (0.5) every fault family keeps the golden-trace false-alarm rate
//!   within 2× of the clean baseline (the sanitizer either rejects the
//!   corruption or the surviving distortion stays under the Eq. 1
//!   threshold);
//! - **graceful recovery** — a transient glitch storm is cleared by
//!   retry + external-probe fallback with zero finally-rejected traces.

use emtrust::acquisition::{RetryPolicy, Stimulus, TestBench};
use emtrust::faults::{FaultKind, FaultPlan, FaultSpec};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::sanitize::{SanitizerConfig, TraceSanitizer};
use emtrust::telemetry::sink::{json_escape, json_number};
use emtrust::TrustMonitor;
use emtrust_bench::{ArtifactDoc, OrExit, Report, EXPERIMENT_KEY};
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

const N_GOLDEN: usize = 16;
const N_SUSPECT: usize = 8;
const INTENSITIES: [f64; 3] = [0.25, 0.5, 1.0];
const DEFAULT_INTENSITY: f64 = 0.5;
const GOLDEN_SEED: u64 = 0xFA01;
const SUSPECT_SEED: u64 = 0xFA02;
const FAULT_SEED: u64 = 0xFA57;

struct Scenario {
    fault: &'static str,
    intensity: f64,
    clean: usize,
    degraded: usize,
    rejected: usize,
    alarms: usize,
    health: &'static str,
    accounted: bool,
    panicked: bool,
}

impl Scenario {
    fn scored(&self) -> usize {
        self.clean + self.degraded
    }

    fn false_alarm_rate(&self) -> f64 {
        if self.scored() == 0 {
            0.0
        } else {
            self.alarms as f64 / self.scored() as f64
        }
    }
}

fn sanitizer() -> TraceSanitizer {
    TraceSanitizer::new(SanitizerConfig {
        // Golden-trace energy varies only with measurement noise; a
        // channel whose energy halves or doubles is reporting its own
        // pathology, not the chip's.
        energy_bounds: Some((0.45, 2.0)),
        ..SanitizerConfig::default()
    })
}

fn run_scenario(
    fp: &GoldenFingerprint,
    traces: &[Vec<f64>],
    fault: &'static str,
    intensity: f64,
) -> Scenario {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut monitor = TrustMonitor::builder(fp.clone())
            .with_sanitizer(sanitizer())
            .build();
        let batch = monitor.ingest_batch_report(traces);
        let accounted = batch.clean() + batch.degraded() + batch.rejected() == traces.len()
            && monitor.traces_seen() + monitor.traces_rejected() == traces.len() as u64;
        (
            batch.clean(),
            batch.degraded(),
            batch.rejected(),
            batch.alarms.len(),
            monitor.health().label(),
            accounted,
        )
    }));
    match outcome {
        Ok((clean, degraded, rejected, alarms, health, accounted)) => Scenario {
            fault,
            intensity,
            clean,
            degraded,
            rejected,
            alarms,
            health,
            accounted,
            panicked: false,
        },
        Err(_) => Scenario {
            fault,
            intensity,
            clean: 0,
            degraded: 0,
            rejected: 0,
            alarms: 0,
            health: "unknown",
            accounted: false,
            panicked: true,
        },
    }
}

fn main() {
    let mut report = Report::from_env("exp_faults");
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip).or_exit("simulation bench");
    let config = FingerprintConfig {
        // Simulation traces carry minimal interference (the silicon
        // benches exercise PCA denoising), and the margin leaves Eq. 1
        // head-room so sanitizer-degraded but scoreable traces do not
        // trip on fitting noise alone.
        pca_components: None,
        threshold_margin: 1.25,
        ..FingerprintConfig::default()
    };
    // Golden fit and every suspect campaign replay one shared stimulus
    // (the paper's fixed-operation assumption): only the measurement
    // noise — and the injected faults — differ between campaigns.
    let block: [u8; 16] = StdRng::seed_from_u64(GOLDEN_SEED ^ 0x97).gen();
    let stimulus = Stimulus::Fixed(block);
    let golden = bench
        .collect_with(
            EXPERIMENT_KEY,
            stimulus,
            N_GOLDEN,
            None,
            Channel::OnChipSensor,
            GOLDEN_SEED,
        )
        .or_exit("golden collection");
    let fp = GoldenFingerprint::fit(&golden, config).or_exit("golden fit");

    // Clean baseline: the same suspect campaign the sweep corrupts, run
    // uncorrupted through the plain monitor.
    let clean_suspects = bench
        .collect_with(
            EXPERIMENT_KEY,
            stimulus,
            N_SUSPECT,
            None,
            Channel::OnChipSensor,
            SUSPECT_SEED,
        )
        .or_exit("clean suspects");
    let mut plain = TrustMonitor::builder(fp.clone()).build();
    plain
        .ingest_batch(clean_suspects.traces())
        .or_exit("clean baseline ingest");
    let baseline_alarms = plain.alarms().len();
    let baseline_far = baseline_alarms as f64 / N_SUSPECT as f64;

    // Faults-disabled equivalence: the sanitizer must be a pure screen —
    // same clean traces, bit-identical alarms.
    let mut screened = TrustMonitor::builder(fp.clone())
        .with_sanitizer(sanitizer())
        .build();
    let clean_batch = screened.ingest_batch_report(clean_suspects.traces());
    let clean_bit_identical = screened.alarms() == plain.alarms() && clean_batch.rejected() == 0;
    assert!(
        clean_bit_identical,
        "sanitized monitor must not change clean-run alarms"
    );
    let plain_collect = bench
        .collect(
            EXPERIMENT_KEY,
            N_SUSPECT,
            None,
            Channel::OnChipSensor,
            SUSPECT_SEED,
        )
        .or_exit("plain collection");
    let robust = bench
        .collect_robust(
            EXPERIMENT_KEY,
            N_SUSPECT,
            None,
            Channel::OnChipSensor,
            SUSPECT_SEED,
            &sanitizer(),
            RetryPolicy::default(),
        )
        .or_exit("robust clean collection");
    let robust_matches_collect = robust.set == plain_collect && robust.retries == 0;
    assert!(
        robust_matches_collect,
        "collect_robust without faults must reproduce collect exactly"
    );

    // The sweep: every fault family × every intensity, on-chip channel
    // only, one fresh monitor per scenario.
    let mut scenarios = Vec::new();
    for kind in FaultKind::ALL {
        for intensity in INTENSITIES {
            let plan = FaultPlan::new(FAULT_SEED)
                .with(FaultSpec::new(kind, intensity).on_channel(Channel::OnChipSensor));
            bench.set_faults(Some(plan));
            let suspects = bench
                .collect_with(
                    EXPERIMENT_KEY,
                    stimulus,
                    N_SUSPECT,
                    None,
                    Channel::OnChipSensor,
                    SUSPECT_SEED,
                )
                .or_exit("faulted collection");
            scenarios.push(run_scenario(
                &fp,
                suspects.traces(),
                kind.label(),
                intensity,
            ));
        }
    }
    bench.set_faults(None);

    for s in &scenarios {
        assert!(!s.panicked, "{} @ {} panicked", s.fault, s.intensity);
        assert!(s.accounted, "{} @ {} lost traces", s.fault, s.intensity);
        if s.intensity == DEFAULT_INTENSITY {
            assert!(
                s.false_alarm_rate() <= 2.0 * baseline_far + 1e-12,
                "{} @ {}: false-alarm rate {:.3} exceeds 2x baseline {:.3}",
                s.fault,
                s.intensity,
                s.false_alarm_rate(),
                baseline_far
            );
        }
    }

    // Recovery: a transient glitch storm (50 % strike probability) on
    // the on-chip channel; retries re-roll the strikes and anything
    // still rejected falls back to the external probe.
    let storm = FaultPlan::new(FAULT_SEED ^ 0x5709).with(
        FaultSpec::new(FaultKind::GlitchBurst, 0.8)
            .with_probability(0.5)
            .on_channel(Channel::OnChipSensor),
    );
    bench.set_faults(Some(storm));
    let recovery = bench
        .collect_robust(
            EXPERIMENT_KEY,
            N_SUSPECT,
            None,
            Channel::OnChipSensor,
            SUSPECT_SEED,
            &sanitizer(),
            RetryPolicy {
                max_attempts: 4,
                fallback: Some(Channel::ExternalProbe),
                max_reject_fraction: 0.5,
                ..RetryPolicy::default()
            },
        )
        .or_exit("recovery collection");
    bench.set_faults(None);
    assert!(
        recovery.retries > 0,
        "the storm must actually strike some first acquisitions"
    );
    assert_eq!(
        recovery.rejected(),
        0,
        "retry + fallback must clear a transient glitch storm"
    );

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            vec![
                s.fault.to_string(),
                format!("{:.2}", s.intensity),
                s.clean.to_string(),
                s.degraded.to_string(),
                s.rejected.to_string(),
                s.alarms.to_string(),
                format!("{:.3}", s.false_alarm_rate()),
                s.health.to_string(),
            ]
        })
        .collect();
    report.table(
        "Fault sweep (golden chip, on-chip sensor)",
        &[
            "fault",
            "intensity",
            "clean",
            "degraded",
            "rejected",
            "alarms",
            "FAR",
            "health",
        ],
        &rows,
    );
    report.table(
        "Clean baseline and recovery",
        &["metric", "value"],
        &[
            vec!["baseline alarms".into(), baseline_alarms.to_string()],
            vec!["baseline FAR".into(), format!("{baseline_far:.3}")],
            vec![
                "clean bit-identical".into(),
                clean_bit_identical.to_string(),
            ],
            vec![
                "robust == collect".into(),
                robust_matches_collect.to_string(),
            ],
            vec!["storm retries".into(), recovery.retries.to_string()],
            vec!["storm fallbacks".into(), recovery.fallbacks.to_string()],
            vec![
                "storm backoff (us)".into(),
                recovery.backoff_total_us.to_string(),
            ],
            vec!["storm rejected".into(), recovery.rejected().to_string()],
        ],
    );
    report.scalar("baseline_false_alarm_rate", baseline_far);
    report.scalar("scenarios", scenarios.len() as f64);
    report.scalar("storm_retries", recovery.retries as f64);

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "    {{\"fault\": \"{}\", \"intensity\": {}, \"traces\": {N_SUSPECT}, \
                 \"clean\": {}, \"degraded\": {}, \"rejected\": {}, \"scored\": {}, \
                 \"alarms\": {}, \"false_alarm_rate\": {}, \"health\": \"{}\", \
                 \"accounted\": {}, \"panicked\": {}}}",
                json_escape(s.fault),
                json_number(s.intensity),
                s.clean,
                s.degraded,
                s.rejected,
                s.scored(),
                s.alarms,
                json_number(s.false_alarm_rate()),
                json_escape(s.health),
                s.accounted,
                s.panicked
            )
        })
        .collect();
    ArtifactDoc::new("fault_injection_sweep")
        .field_u64("n_golden", N_GOLDEN as u64)
        .field_u64("n_suspect", N_SUSPECT as u64)
        .field_f64("default_intensity", DEFAULT_INTENSITY)
        .field_raw(
            "baseline",
            format!(
                "{{\"scored\": {N_SUSPECT}, \"alarms\": {baseline_alarms}, \
                 \"false_alarm_rate\": {}}}",
                json_number(baseline_far)
            ),
        )
        .field_bool("clean_bit_identical", clean_bit_identical)
        .field_bool("robust_matches_collect", robust_matches_collect)
        .field_array("scenarios", &scenario_json)
        .field_raw(
            "recovery",
            format!(
                "{{\"retries\": {}, \"fallbacks\": {}, \"backoff_total_us\": {}, \
                 \"rejected\": {}}}",
                recovery.retries,
                recovery.fallbacks,
                recovery.backoff_total_us,
                recovery.rejected()
            ),
        )
        .write("BENCH_faults.json", &mut report);
    report.finish();
}
