#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Performance-regression gate for `BENCH_parallel.json` — CI's `perf`
//! job runs this after `exp_throughput`, comparing the fresh artifact
//! against the committed `BENCH_baseline.json`:
//!
//! - every `workers > 1` speedup must stay at or above 0.95× (the pool's
//!   host clamp guarantees oversubscription never regresses below 1×, so
//!   anything under the floor is a scaling bug, not noise),
//! - the hot-path before/after ratio must stay at or above 1.3× (the SoA
//!   and amplitude-table kernels must keep paying for themselves),
//! - when current and baseline ran on hosts with the same CPU count, the
//!   best throughput must not fall more than 15 % below the baseline
//!   (wall-clock comparisons across different hosts are meaningless and
//!   are skipped with a note).
//!
//! Usage: `check_bench_regression <current.json> <baseline.json>` —
//! exits 0 when every gate holds, 1 with per-gate reasons otherwise.

use emtrust_bench::json::Value;

/// Minimum allowed speedup for any `workers > 1` row.
const MIN_SPEEDUP: f64 = 0.95;
/// Minimum allowed hot-path before/after ratio.
const MIN_HOT_RATIO: f64 = 1.3;
/// Maximum allowed wall-clock slowdown vs. the baseline (same host
/// CPU count only): current throughput ≥ baseline / MAX_SLOWDOWN.
const MAX_SLOWDOWN: f64 = 1.15;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("benchmark").and_then(Value::as_str) {
        Some("golden_collect_fit") => Ok(doc),
        Some(other) => Err(format!(
            "{path}: expected benchmark \"golden_collect_fit\", got \"{other}\""
        )),
        None => Err(format!("{path}: missing \"benchmark\" discriminator")),
    }
}

fn number(doc: &Value, path: &str, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{path}: missing number \"{key}\""))
}

/// Best throughput across the result rows.
fn best_traces_per_sec(doc: &Value, path: &str) -> Result<f64, String> {
    let rows = doc
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: missing \"results\" array"))?;
    let mut best = 0.0f64;
    for row in rows {
        best = best.max(number(row, path, "traces_per_sec")?);
    }
    if best > 0.0 {
        Ok(best)
    } else {
        Err(format!("{path}: no positive \"traces_per_sec\" row"))
    }
}

fn check(current_path: &str, baseline_path: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            failures.extend(c.err());
            failures.extend(b.err());
            return failures;
        }
    };

    // Gate 1: the scaling floor, on the current run alone.
    match current.get("results").and_then(Value::as_array) {
        Some(rows) => {
            for row in rows {
                let workers = row.get("workers").and_then(Value::as_u64).unwrap_or(0);
                let speedup = row.get("speedup").and_then(Value::as_f64).unwrap_or(0.0);
                if workers > 1 && speedup < MIN_SPEEDUP {
                    failures.push(format!(
                        "workers={workers} speedup {speedup:.3} below the {MIN_SPEEDUP} floor"
                    ));
                }
            }
        }
        None => failures.push(format!("{current_path}: missing \"results\" array")),
    }

    // Gate 2: the hot-path ratio, on the current run alone.
    match current
        .get("hot_path")
        .map(|h| number(h, current_path, "ratio"))
    {
        Some(Ok(ratio)) => {
            if ratio < MIN_HOT_RATIO {
                failures.push(format!(
                    "hot-path ratio {ratio:.3} below the {MIN_HOT_RATIO} floor"
                ));
            }
        }
        Some(Err(e)) => failures.push(e),
        None => failures.push(format!("{current_path}: missing \"hot_path\" object")),
    }

    // Gate 3: wall-clock vs. the baseline, same-host only.
    let cur_cpus = current.get("host_cpus").and_then(Value::as_u64);
    let base_cpus = baseline.get("host_cpus").and_then(Value::as_u64);
    match (cur_cpus, base_cpus) {
        (Some(c), Some(b)) if c == b => {
            match (
                best_traces_per_sec(&current, current_path),
                best_traces_per_sec(&baseline, baseline_path),
            ) {
                (Ok(cur_tps), Ok(base_tps)) => {
                    if cur_tps < base_tps / MAX_SLOWDOWN {
                        failures.push(format!(
                            "throughput {cur_tps:.2} traces/s is more than \
                             {:.0}% below baseline {base_tps:.2}",
                            (MAX_SLOWDOWN - 1.0) * 100.0
                        ));
                    }
                }
                (c, b) => {
                    failures.extend(c.err());
                    failures.extend(b.err());
                }
            }
        }
        (Some(c), Some(b)) => {
            println!(
                "note: wall-clock comparison skipped — current host has {c} CPUs, \
                 baseline ran on {b}"
            );
        }
        _ => failures.push("missing \"host_cpus\" in current or baseline".into()),
    }

    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [current_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: check_bench_regression <current.json> <baseline.json>");
        std::process::exit(2);
    };
    let failures = check(current_path, baseline_path);
    if failures.is_empty() {
        println!("{current_path}: ok (vs {baseline_path})");
    } else {
        for f in &failures {
            eprintln!("{current_path}: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
