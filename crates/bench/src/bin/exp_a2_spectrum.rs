#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E4 — Figure 4**: A2 Trojan detection in the frequency domain.
//!
//! The dormant chip's spectrum shows the clock line and its second
//! harmonic; when the A2-style Trojan's trigger wire starts its fast
//! flipping, an activation peak appears.

use emtrust::acquisition::TestBench;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust_bench::OrExit;
use emtrust_bench::{print_spectrum_series, Report, EXPERIMENT_KEY, SPECTRAL_BLOCKS};
use emtrust_silicon::Channel;
use emtrust_trojan::{A2Trojan, ProtectedChip};

fn main() {
    let mut report = Report::from_env("exp_a2_spectrum");
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)
        .or_exit("simulation bench")
        .with_a2(A2Trojan::new(10e6)); // trigger flips at clk/2 = 5 MHz

    let golden = bench
        .collect_continuous(
            EXPERIMENT_KEY,
            SPECTRAL_BLOCKS,
            None,
            Channel::OnChipSensor,
            0xA2,
        )
        .or_exit("golden window");
    bench.arm_a2(true).or_exit("A2 installed above");
    let triggering = bench
        .collect_continuous(
            EXPERIMENT_KEY,
            SPECTRAL_BLOCKS,
            None,
            Channel::OnChipSensor,
            0xA2,
        )
        .or_exit("triggering window");

    if report.is_text() {
        println!("== E4 — A2 Trojan detection in the frequency domain (paper Fig. 4) ==");
        print_spectrum_series("blue: original circuit", &golden, 320e6, 24)
            .or_exit("golden series");
        print_spectrum_series("red: A2 triggering", &triggering, 320e6, 24)
            .or_exit("trigger series");
    }

    let detector = SpectralDetector::fit(&golden, SpectralConfig::default()).or_exit("detector");
    let anomalies = detector.compare(&triggering).or_exit("compare");
    let rows: Vec<Vec<String>> = anomalies
        .iter()
        .take(5)
        .map(|a| {
            vec![
                format!("{:.3} MHz", a.frequency_hz / 1e6),
                format!("{:.3e}", a.golden_magnitude),
                format!("{:.3e}", a.suspect_magnitude),
                format!("{:?}", a.kind),
            ]
        })
        .collect();
    report.table(
        "Activation peaks found by the spectral detector",
        &["Frequency", "Golden mag", "Triggering mag", "Kind"],
        &rows,
    );
    report.scalar("anomaly_count", anomalies.len() as f64);

    assert!(
        !anomalies.is_empty(),
        "the A2 trigger must produce a spectral anomaly"
    );
    // Every activation peak must sit on the trigger's harmonic comb: odd
    // multiples of the 5 MHz toggle frequency. The emf sensor emphasizes
    // the comb's high harmonics since emf grows with frequency — see
    // EXPERIMENTS.md for the discussion vs. the paper's Fig. 4 rendering.
    let toggle = 5e6;
    for a in anomalies.iter().take(5) {
        let harmonic = (a.frequency_hz / toggle).round();
        let off = (a.frequency_hz - harmonic * toggle).abs();
        assert!(
            off < 1e6 && harmonic as u64 % 2 == 1,
            "anomaly at {:.2} MHz is off the 5 MHz odd-harmonic comb",
            a.frequency_hz / 1e6
        );
    }
    report.scalar("strongest_peak_hz", anomalies[0].frequency_hz);
    report.note(format!(
        "\nShape check: activation peaks lie on the trigger's odd-harmonic comb\n\
         (5 MHz toggle); strongest at {:.1} MHz. Clock line at 10 MHz and its\n\
         harmonic at 20 MHz are present in both spectra.",
        anomalies[0].frequency_hz / 1e6
    ));
    report.finish();
}
