#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Golden-model-free Trojan detection: the same four Trojans, zero
//! golden traces.
//!
//! The paper's pipeline fits on golden material collected from a
//! known-clean chip. This experiment removes that requirement entirely:
//! a self-calibrating pipeline ([`BaselineSource::SelfCalibrating`])
//! learns a rolling robust baseline — per-dimension median centre,
//! `median + k × MAD` threshold — from its first live traces and then
//! screens each Trojan with no reference model at all. A golden-fitted
//! pipeline runs beside it on the same material, so the artifact can
//! report the *false-alarm gap*: what reference-freedom costs on clean
//! traffic.
//!
//! Gates (asserted here and by `check_bench_schema` on
//! `BENCH_reference_free.json`): at least 3 of 4 Trojans detected, zero
//! alarms during the warm-up, and a provenance attestation that zero
//! golden traces were consulted.

use emtrust::acquisition::{TestBench, TraceSet};
use emtrust::baseline::{BaselineSource, SelfCalibratingConfig};
use emtrust::detector::{EuclideanDetector, GoldenContext};
use emtrust::fingerprint::FingerprintConfig;
use emtrust::pipeline::DetectionPipeline;
use emtrust::telemetry::sink::json_number;
use emtrust::TrustError;
use emtrust_bench::{ArtifactDoc, OrExit, Report, EXPERIMENT_KEY};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

const N_WARMUP: usize = 16;
const N_EVAL: usize = 16;
const N_SUSPECT: usize = 16;
const MAD_MULTIPLIER: f64 = 8.0;

const TROJANS: [TrojanKind; 4] = [
    TrojanKind::T1AmLeaker,
    TrojanKind::T2LeakageLeaker,
    TrojanKind::T3CdmaLeaker,
    TrojanKind::T4PowerDegrader,
];

struct Screening {
    kind: TrojanKind,
    selfcal_alarm_rate: f64,
    golden_alarm_rate: f64,
    detected: bool,
}

/// A fresh self-calibrating pipeline warmed on `warmup` clean traces.
/// Returns the pipeline and the alarms raised *during* the warm-up
/// (the never-arms-early contract says this must be zero).
fn warmed_selfcal_pipeline(warmup: &[Vec<f64>]) -> Result<(DetectionPipeline, usize), TrustError> {
    let mut pipeline = DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::from_config(
            FingerprintConfig::default(),
        )))
        .build();
    pipeline.fit_baseline(&BaselineSource::self_calibrating(SelfCalibratingConfig {
        warmup: N_WARMUP,
        mad_multiplier: MAD_MULTIPLIER,
        ..SelfCalibratingConfig::default()
    }))?;
    let batch = pipeline.try_ingest_batch(warmup)?;
    let warmup_alarms = batch.outcomes.iter().filter(|o| o.alarm.is_some()).count();
    Ok((pipeline, warmup_alarms))
}

/// Fraction of the batch that raised a fused alarm.
fn alarm_rate(pipeline: &mut DetectionPipeline, traces: &[Vec<f64>]) -> Result<f64, TrustError> {
    let batch = pipeline.try_ingest_batch(traces)?;
    let alarms = batch.outcomes.iter().filter(|o| o.alarm.is_some()).count();
    Ok(alarms as f64 / traces.len().max(1) as f64)
}

fn main() {
    let mut report = Report::from_env("exp_reference_free");
    let chip = ProtectedChip::with_all_trojans();
    let bench = TestBench::simulation(&chip).or_exit("bench");

    // One clean campaign covers both the self-calibrating warm-up and
    // the clean evaluation; the golden comparison pipeline fits on the
    // same first N_WARMUP traces, so the two pipelines see identical
    // material and differ only in how they turn it into a baseline.
    let clean = bench
        .collect(
            EXPERIMENT_KEY,
            N_WARMUP + N_EVAL,
            None,
            Channel::OnChipSensor,
            42,
        )
        .or_exit("clean collection");
    let warmup = &clean.traces()[..N_WARMUP];
    let eval = &clean.traces()[N_WARMUP..];

    let (mut selfcal, warmup_alarms) = warmed_selfcal_pipeline(warmup).or_exit("self-cal warm-up");
    assert!(
        selfcal.calibration_state().is_armed(),
        "the rolling baseline must arm after {N_WARMUP} clean traces"
    );
    assert!(
        warmup_alarms == 0,
        "nothing may alarm during the warm-up (got {warmup_alarms})"
    );

    let golden_set = TraceSet::new(warmup.to_vec(), clean.sample_rate_hz()).or_exit("golden set");
    let fit_golden_pipeline = || -> Result<DetectionPipeline, TrustError> {
        let mut pipeline = DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::from_config(
                FingerprintConfig {
                    pca_components: None,
                    ..FingerprintConfig::default()
                },
            )))
            .build();
        pipeline.fit(&GoldenContext::new().with_traces(&golden_set))?;
        Ok(pipeline)
    };
    let mut golden = fit_golden_pipeline().or_exit("golden fit");

    let selfcal_far = alarm_rate(&mut selfcal, eval).or_exit("self-cal clean eval");
    let golden_far = alarm_rate(&mut golden, eval).or_exit("golden clean eval");
    let false_alarm_gap = selfcal_far - golden_far;

    // Suspect campaigns reuse the clean seed (fixed plaintext, same
    // noise draws): the excess each pipeline sees is purely the armed
    // Trojan's switching current. Every Trojan gets fresh pipelines so
    // one screening's drift tracking cannot leak into the next.
    let mut screenings = Vec::new();
    for kind in TROJANS {
        let suspects = bench
            .collect(
                EXPERIMENT_KEY,
                N_SUSPECT,
                Some(kind),
                Channel::OnChipSensor,
                42,
            )
            .or_exit("suspect collection");
        let (mut selfcal, _) = warmed_selfcal_pipeline(warmup).or_exit("self-cal warm-up");
        let mut golden = fit_golden_pipeline().or_exit("golden fit");
        let selfcal_alarm_rate =
            alarm_rate(&mut selfcal, suspects.traces()).or_exit("self-cal screening");
        let golden_alarm_rate =
            alarm_rate(&mut golden, suspects.traces()).or_exit("golden screening");
        screenings.push(Screening {
            kind,
            selfcal_alarm_rate,
            golden_alarm_rate,
            detected: selfcal_alarm_rate >= 0.5,
        });
    }

    let detected = screenings.iter().filter(|s| s.detected).count();
    assert!(
        detected >= 3,
        "at least 3 of 4 Trojans must be detected with zero golden traces (got {detected})"
    );

    report.table(
        "Reference-free screening (zero golden traces)",
        &[
            "trojan",
            "self-cal alarm rate",
            "golden alarm rate",
            "detected",
        ],
        &screenings
            .iter()
            .map(|s| {
                vec![
                    format!("{:?}", s.kind),
                    format!("{:.2}", s.selfcal_alarm_rate),
                    format!("{:.2}", s.golden_alarm_rate),
                    if s.detected { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.scalar("detected", detected as f64);
    report.scalar("false_alarm_rate_selfcal", selfcal_far);
    report.scalar("false_alarm_rate_golden", golden_far);
    report.scalar("false_alarm_gap", false_alarm_gap);

    let trojan_json: Vec<String> = screenings
        .iter()
        .map(|s| {
            format!(
                "    {{\"trojan\": \"{:?}\", \"alarm_rate_selfcal\": {}, \
                 \"alarm_rate_golden\": {}, \"detected\": {}}}",
                s.kind,
                json_number(s.selfcal_alarm_rate),
                json_number(s.golden_alarm_rate),
                s.detected,
            )
        })
        .collect();

    ArtifactDoc::new("reference_free")
        .field_u64("n_warmup", N_WARMUP as u64)
        .field_u64("n_eval", N_EVAL as u64)
        .field_u64("n_suspect_per_trojan", N_SUSPECT as u64)
        .field_u64("golden_traces_used", 0)
        .field_bool("reference_free", true)
        .field_f64("mad_multiplier", MAD_MULTIPLIER)
        .field_u64("warmup_alarms", warmup_alarms as u64)
        .field_u64("detected", detected as u64)
        .field_f64("false_alarm_rate_selfcal", selfcal_far)
        .field_f64("false_alarm_rate_golden", golden_far)
        .field_f64("false_alarm_gap", false_alarm_gap)
        .field_array("trojans", &trojan_json)
        .write("BENCH_reference_free.json", &mut report);
    report.finish();
}
