#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E1 — Table I**: Trojan sizes compared to the whole AES design.
//!
//! Prints our gate counts and percentages next to the paper's, plus the
//! A2 row (area-based, as in the paper).

use emtrust_bench::{standard_chip, Report, TROJANS};
use emtrust_netlist::library::Library;
use emtrust_netlist::stats::{area_percent, module_stats};
use emtrust_trojan::A2Trojan;

fn main() {
    let mut report = Report::from_env("exp_table1");
    let chip = standard_chip();
    let netlist = chip.netlist();
    let library = Library::generic_180nm();
    let aes = module_stats(netlist, "aes").total;

    let mut rows = vec![vec![
        "AES".to_string(),
        aes.to_string(),
        "100.00%".to_string(),
        "33083".to_string(),
        "100%".to_string(),
    ]];
    for kind in TROJANS {
        let count = module_stats(netlist, kind.module_tag()).total;
        report.scalar(
            &format!("{}_percent", kind.label().to_lowercase()),
            100.0 * count as f64 / aes as f64,
        );
        rows.push(vec![
            kind.label().to_string(),
            count.to_string(),
            format!("{:.2}%", 100.0 * count as f64 / aes as f64),
            match kind.label() {
                "T1" => "1657",
                "T2" => "2793",
                "T3" => "250",
                _ => "2793",
            }
            .to_string(),
            format!("{:.2}%", kind.paper_percent()),
        ]);
    }
    // A2: the paper reports area percentage (0.087 %), not gates.
    let aes_area = area_percent(netlist, &library, "aes", "aes"); // 100.0
    let _ = aes_area;
    let aes_area_um2: f64 = netlist
        .cells()
        .filter(|(_, c)| netlist.module_path(c.module()).starts_with("aes"))
        .map(|(_, c)| library.electrical(c.kind()).area_um2)
        .sum();
    report.scalar("a2_area_percent", 100.0 * A2Trojan::AREA_UM2 / aes_area_um2);
    rows.push(vec![
        "A2".to_string(),
        format!("{} transistors", A2Trojan::TRANSISTOR_COUNT),
        format!("{:.3}% (area)", 100.0 * A2Trojan::AREA_UM2 / aes_area_um2),
        "N/A".to_string(),
        "0.087% (area)".to_string(),
    ]);

    report.table(
        "Table I — Trojan sizes compared to the whole AES design",
        &[
            "Circuit",
            "Gate count",
            "Percentage",
            "Paper gates",
            "Paper %",
        ],
        &rows,
    );
    report.note(
        "\nShape check: T3 < T1 < T2 ≈ T4, A2 ≪ 1% — mirrors the paper's ordering.\n\
         Absolute counts differ because the paper's AES comes from a different\n\
         RTL + commercial 180 nm library; percentages are matched by design.",
    );
    report.finish();
}
