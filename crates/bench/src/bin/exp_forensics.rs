#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **Observability — decision forensics end to end**: proves that an
//! armed-Trojan alarm can be reconstructed after the fact from the
//! observability plane alone, without re-running the campaign.
//!
//! Two campaigns feed one decision log:
//!
//! 1. **A2 trigger flight recording** — a spectral monitor watches
//!    dormant continuous windows (the frozen pre-context), the A2
//!    Trojan's trigger wire starts flipping for exactly one window (the
//!    alarm), then the chip goes dormant again (the post-context). The
//!    alarm's flight window must contain the triggering
//!    [`DecisionRecord`] at the right offset, carrying the alarm's
//!    correlation id and a positive spectral margin.
//! 2. **Array localization campaign** — a 2×2 sensor array evaluates a
//!    register-bank Trojan; the campaign's array-level record carries
//!    one margin per tile.
//!
//! Artifacts:
//!
//! - `BENCH_forensics.json` — machine-checked proof summary
//!   (`check_bench_schema` gates every claim in CI);
//! - `TELEMETRY_decisions.jsonl` — the combined decision log, one JSON
//!   record per line (`check_bench_schema --jsonl` validates it).
//!
//! [`DecisionRecord`]: emtrust::telemetry::DecisionRecord

use emtrust::acquisition::TestBench;
use emtrust::array::SensorArray;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::sanitize::TraceSanitizer;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust::telemetry::{
    self, decisions_jsonl, DecisionRecord, FlightRecorderConfig, ForensicsConfig, InMemoryRecorder,
};
use emtrust::TrustMonitor;
use emtrust_bench::{write_artifact, ArtifactDoc, OrExit, Report, EXPERIMENT_KEY, TROJANS};
use emtrust_silicon::Channel;
use emtrust_trojan::{A2Trojan, ProtectedChip};
use std::sync::Arc;

const N_GOLDEN: usize = 12;
const WINDOW_BLOCKS: usize = 24;
const PRE_WINDOWS: usize = 3;
const POST_WINDOWS: usize = 2;
const ARRAY_GOLDEN: usize = 8;
const ARRAY_SUSPECT: usize = 4;

fn main() {
    let mut report = Report::from_env("exp_forensics");

    // ---- Campaign 1: A2 trigger caught by the flight recorder. ----
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)
        .or_exit("simulation bench")
        .with_a2(A2Trojan::new(10e6)); // trigger flips at clk/2 = 5 MHz

    let golden = bench
        .collect(EXPERIMENT_KEY, N_GOLDEN, None, Channel::OnChipSensor, 0xF0)
        .or_exit("golden traces");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).or_exit("golden fit");
    let golden_window = bench
        .collect_continuous(
            EXPERIMENT_KEY,
            WINDOW_BLOCKS,
            None,
            Channel::OnChipSensor,
            0xF1,
        )
        .or_exit("dormant window");
    let detector =
        SpectralDetector::fit(&golden_window, SpectralConfig::default()).or_exit("spectral fit");

    let registry = Arc::new(InMemoryRecorder::new());
    telemetry::install(registry.clone());
    let mut monitor = TrustMonitor::builder(fp)
        .with_spectral(detector)
        .with_sanitizer(TraceSanitizer::default())
        .with_chip_id("chip0")
        .with_forensics(ForensicsConfig {
            flight: FlightRecorderConfig {
                pre: PRE_WINDOWS,
                post: POST_WINDOWS,
                max_windows: 8,
            },
            ..ForensicsConfig::default()
        })
        .build();

    // Pre-context: the chip is dormant; re-observing the fit window is
    // guaranteed clean, so the flight recorder's ring holds only quiet
    // records when the trigger fires.
    for _ in 0..PRE_WINDOWS {
        let alarm = monitor
            .ingest_window(&golden_window)
            .or_exit("dormant ingest");
        assert!(alarm.is_none(), "dormant window must not alarm");
    }

    // The trigger wire starts flipping: same stimulus, same noise seed —
    // the only spectral difference is the Trojan's activity.
    bench.arm_a2(true).or_exit("A2 installed above");
    let triggering = bench
        .collect_continuous(
            EXPERIMENT_KEY,
            WINDOW_BLOCKS,
            None,
            Channel::OnChipSensor,
            0xF1,
        )
        .or_exit("triggering window");
    bench.arm_a2(false).or_exit("A2 installed above");
    let alarm = monitor
        .ingest_window(&triggering)
        .or_exit("trigger ingest")
        .or_exit("the A2 trigger window must alarm");
    let correlation_id = alarm.correlation_id();

    // Post-context: dormant again; the window seals once it fills.
    for _ in 0..POST_WINDOWS {
        monitor
            .ingest_window(&golden_window)
            .or_exit("post-context ingest");
    }
    // One defective trace for schema coverage of rejected records
    // (outside the flight window — it seals before this record).
    let mut bad = golden.traces()[0].clone();
    bad[7] = f64::NAN;
    monitor.ingest_checked(&bad);
    monitor.seal_flight_windows();

    // The proof: the alarm's flight window reconstructs the incident.
    let flight = monitor
        .flight_windows()
        .iter()
        .find(|w| w.correlation_id == correlation_id)
        .or_exit("a flight window must exist for the alarm");
    let trigger = flight
        .trigger_record()
        .or_exit("flight window must hold its trigger");
    assert_eq!(flight.trigger, PRE_WINDOWS, "pre-context must be frozen");
    assert_eq!(
        flight.records.len(),
        PRE_WINDOWS + 1 + POST_WINDOWS,
        "pre + trigger + post"
    );
    assert!(trigger.fused_alarm);
    assert_eq!(trigger.correlation_id, Some(correlation_id));
    assert_eq!(trigger.domain, "window");
    assert_eq!(trigger.labels.get("chip_id"), Some("chip0"));
    let spectral_margin = trigger
        .detectors
        .iter()
        .find(|d| d.suspected)
        .map(|d| d.margin)
        .or_exit("the trigger record must carry the firing detector's margin");
    assert!(
        spectral_margin > 0.0,
        "the firing detector's margin must be positive"
    );
    assert!(
        flight.records[..PRE_WINDOWS].iter().all(|r| !r.fused_alarm),
        "pre-context must be quiet"
    );
    let rejected = monitor
        .decisions()
        .iter()
        .filter(|r| r.verdict == "rejected")
        .count();
    assert_eq!(rejected, 1, "the NaN trace must log a rejected record");

    report.table(
        "A2 flight recording",
        &["metric", "value"],
        &[
            vec!["pre-context windows".into(), PRE_WINDOWS.to_string()],
            vec!["post-context windows".into(), POST_WINDOWS.to_string()],
            vec!["alarm correlation id".into(), correlation_id.to_string()],
            vec!["flight records".into(), flight.records.len().to_string()],
            vec!["trigger offset".into(), flight.trigger.to_string()],
            vec![
                "trigger spectral margin".into(),
                format!("{spectral_margin:+.3}"),
            ],
            vec![
                "decision records".into(),
                monitor.decisions().len().to_string(),
            ],
        ],
    );
    report.scalar("correlation_id", correlation_id as f64);
    report.scalar("trigger_margin", spectral_margin);

    // ---- Campaign 2: array localization with per-tile forensics. ----
    let trojan_chip = ProtectedChip::with_all_trojans();
    let mut array = SensorArray::builder(&trojan_chip)
        .with_grid(2, 2)
        .or_exit("grid")
        .with_turns(8)
        .or_exit("turns")
        .with_fingerprint(FingerprintConfig {
            pca_components: None,
            ..FingerprintConfig::default()
        })
        .with_chip_id("chip0")
        .with_forensics(ForensicsConfig::default())
        .build()
        .or_exit("array build");
    let array_golden = array
        .collect(EXPERIMENT_KEY, ARRAY_GOLDEN, None, 42)
        .or_exit("array golden");
    array.fit_golden(&array_golden).or_exit("array fit");
    let suspects = array
        .collect(EXPERIMENT_KEY, ARRAY_SUSPECT, Some(TROJANS[0]), 42)
        .or_exit("array suspects");
    let verdict = array.attribute(&suspects, None).or_exit("array attribute");
    telemetry::uninstall();

    let campaign = array
        .decisions()
        .last()
        .or_exit("the campaign must log an array record");
    assert_eq!(campaign.domain, "array");
    assert_eq!(campaign.fused_alarm, verdict.alarmed());
    assert_eq!(
        campaign.tiles.len(),
        array.len(),
        "one margin per tile required"
    );
    assert!(verdict.alarmed(), "the armed Trojan campaign must alarm");

    let tile_rows: Vec<Vec<String>> = campaign
        .tiles
        .iter()
        .map(|t| {
            vec![
                format!("r{}c{}", t.row, t.col),
                format!("{:+.4}", t.margin),
                format!("{:.2}", t.alarm_rate),
            ]
        })
        .collect();
    report.table(
        "Array campaign per-tile margins",
        &["tile", "margin", "alarm rate"],
        &tile_rows,
    );

    // ---- Artifacts. ----
    let mut all_records: Vec<DecisionRecord> = monitor.decisions().to_vec();
    all_records.extend(array.decisions().iter().cloned());
    write_artifact("TELEMETRY_decisions.jsonl", &decisions_jsonl(&all_records));

    let tiles_json: Vec<String> = campaign
        .tiles
        .iter()
        .map(|t| {
            format!(
                "    {{\"row\": {}, \"col\": {}, \"margin\": {}, \"alarm_rate\": {}}}",
                t.row,
                t.col,
                emtrust::telemetry::sink::json_number(t.margin),
                emtrust::telemetry::sink::json_number(t.alarm_rate)
            )
        })
        .collect();
    let doc = ArtifactDoc::new("forensics")
        .field_u64("n_golden", N_GOLDEN as u64)
        .field_u64("window_blocks", WINDOW_BLOCKS as u64)
        .field_u64("pre_windows", PRE_WINDOWS as u64)
        .field_u64("post_windows", POST_WINDOWS as u64)
        .field_u64("correlation_id", correlation_id)
        .field_u64("flight_records", flight.records.len() as u64)
        .field_u64("trigger_offset", flight.trigger as u64)
        .field_f64("trigger_margin", spectral_margin)
        .field_bool("trigger_alarmed", trigger.fused_alarm)
        .field_u64("decision_count", all_records.len() as u64)
        .field_u64("rejected_count", rejected as u64)
        .field_u64("array_rows", array.rows() as u64)
        .field_u64("array_cols", array.cols() as u64)
        .field_bool("array_alarmed", verdict.alarmed())
        .field_array("tiles", &tiles_json);
    write_artifact("BENCH_forensics.json", &doc.to_json());
    report.note("\nwrote BENCH_forensics.json, TELEMETRY_decisions.jsonl");
    report.finish();
}
