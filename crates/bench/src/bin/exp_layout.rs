#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E8 — Figures 2 and 3**: the probe structures and the protected
//! layout. These paper figures are photographs/renderings of geometry;
//! this binary prints the equivalent geometric inventory of our
//! generated layout, plus an ASCII rendering of the die with the spiral
//! sensor overlaid.

use emtrust::acquisition::TestBench;
use emtrust_bench::OrExit;
use emtrust_bench::{standard_chip, Report};
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;

fn main() {
    let mut report = Report::from_env("exp_layout");
    let chip = standard_chip();
    let bench = TestBench::simulation(&chip).or_exit("bench");
    let fp = bench.floorplan();
    let die = fp.die();
    let spiral = SpiralSensor::for_die(die).or_exit("spiral");
    let probe = ExternalProbe::over_die(die);
    report.scalar("spiral_turns", spiral.turns() as f64);
    report.scalar("spiral_wire_length_um", spiral.wire_length_um());
    report.scalar("spiral_resistance_ohm", spiral.resistance_ohm());

    report.table(
        "Fig. 2 — probe structures",
        &["Property", "On-chip sensor (b)", "External probe (a)"],
        &[
            vec![
                "structure".into(),
                "one-way square spiral, center to corner".into(),
                "stacked identical circular turns".into(),
            ],
            vec![
                "turns".into(),
                spiral.turns().to_string(),
                probe.turns().to_string(),
            ],
            vec![
                "wire width".into(),
                format!("{:.2} um (min-width rule)", spiral.width_um()),
                "-".into(),
            ],
            vec![
                "height above logic".into(),
                format!("{:.0} um (M6)", spiral.z_um()),
                format!("{:.0} um (package standoff)", probe.z_um()),
            ],
            vec![
                "extent".into(),
                format!(
                    "{:.0} um outer turn",
                    2.0 * spiral.turn_rect(spiral.turns() - 1).width() / 2.0
                ),
                format!("{:.0} um radius", probe.radius_um()),
            ],
            vec![
                "wire length".into(),
                format!("{:.0} um", spiral.wire_length_um()),
                "-".into(),
            ],
            vec![
                "series resistance".into(),
                format!("{:.1} ohm", spiral.resistance_ohm()),
                "-".into(),
            ],
        ],
    );

    let regions: Vec<Vec<String>> = fp
        .regions()
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                format!(
                    "({:.0},{:.0})..({:.0},{:.0})",
                    r.min.x, r.min.y, r.max.x, r.max.y
                ),
                format!("{:.0} um2", r.area()),
            ]
        })
        .collect();
    report.table(
        "Fig. 3 — placed regions",
        &["Block", "Extent (um)", "Area"],
        &regions,
    );

    let pads: Vec<Vec<String>> = fp
        .pads()
        .iter()
        .map(|p| {
            vec![
                format!("{:?}", p.kind),
                format!("({:.0},{:.0})", p.location.x, p.location.y),
            ]
        })
        .collect();
    report.table("Pad ring", &["Pad", "Location (um)"], &pads);

    // ASCII die map: cell density + sensor turns (text mode only).
    if report.is_text() {
        println!(
            "\nDie map ({}x{} um, '#'=high cell density, '.'=low, 'o'=spiral turn boundary):",
            die.width_um(),
            die.height_um()
        );
        let grid = 32usize;
        let sx = die.width_um() / grid as f64;
        let sy = die.height_um() / grid as f64;
        let mut density = vec![vec![0u32; grid]; grid];
        for p in fp.locations() {
            let gx = ((p.x / sx) as usize).min(grid - 1);
            let gy = ((p.y / sy) as usize).min(grid - 1);
            density[gy][gx] += 1;
        }
        let max_d = density.iter().flatten().copied().max().unwrap_or(1).max(1);
        for gy in (0..grid).rev() {
            let mut line = String::new();
            for (gx, &d) in density[gy].iter().enumerate() {
                let x = (gx as f64 + 0.5) * sx;
                let y = (gy as f64 + 0.5) * sy;
                let turn_here = {
                    let n1 = spiral.turns_enclosing(x, y);
                    let n2 = spiral.turns_enclosing(x + sx, y);
                    n1 != n2
                };
                line.push(if turn_here {
                    'o'
                } else if d > max_d / 2 {
                    '#'
                } else if d > 0 {
                    '.'
                } else {
                    ' '
                });
            }
            println!("  {line}");
        }
    }
    report.note("\nSensor In at die centre, Sensor Out at the outer corner (one-way spiral).");
    report.finish();
}
