#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! **E6 — Figure 6 (a)–(h)**: pairwise Euclidean-distance histograms for
//! T1..T4, measured on the fabricated chip with the external probe
//! (panels a–d, overlapping) and the on-chip sensor (panels e–h,
//! separable peaks).

use emtrust::acquisition::TestBench;
use emtrust::euclidean::distance_panel;
use emtrust_bench::OrExit;
use emtrust_bench::{print_histogram, standard_chip, Report, EXPERIMENT_KEY, TROJANS};
use emtrust_silicon::Channel;

fn main() {
    let mut report = Report::from_env("exp_fig6_histograms");
    let chip = standard_chip();
    let bench = TestBench::silicon(&chip, 1).or_exit("silicon bench");
    let n_traces = 60;
    let bins = 24;

    let mut summary = Vec::new();
    for (channel, tag) in [
        (Channel::ExternalProbe, "external probe (panels a-d)"),
        (Channel::OnChipSensor, "on-chip sensor (panels e-h)"),
    ] {
        if report.is_text() {
            println!("\n==== {tag} ====");
        }
        for kind in TROJANS {
            let panel = distance_panel(
                &bench,
                EXPERIMENT_KEY,
                kind,
                n_traces,
                channel,
                bins,
                0xF16 ^ kind.label().len() as u64,
            )
            .or_exit("panel");
            if report.is_text() {
                println!("\n-- {} --", kind.label());
                print_histogram("golden (red stripes)", &panel.golden, 40);
                print_histogram("trojan activated (blue stripes)", &panel.trojan, 40);
            }
            let probe = tag.split(' ').next().or_exit("probe tag").to_string();
            report.scalar(
                &format!("{}_{}_overlap", probe, kind.label().to_lowercase()),
                panel.overlap,
            );
            summary.push(vec![
                probe,
                kind.label().to_string(),
                format!("{:.3}", panel.overlap),
                format!("{:+.1}%", 100.0 * panel.peak_shift),
            ]);
        }
    }

    report.table(
        "Fig. 6 (a)-(h) summary — distribution overlap and peak shift",
        &["Probe", "Trojan", "Overlap", "Peak shift"],
        &summary,
    );
    report.note(
        "\nShape check (paper): external-probe distributions are not separable for\n\
         any Trojan; the on-chip sensor separates the peaks, with T3 (smallest\n\
         Trojan) the most marginal case.",
    );
    report.finish();
}
