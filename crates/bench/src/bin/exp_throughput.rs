#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Throughput of the parallel acquisition engine: golden-set collect+fit
//! at 1/2/4/8 workers, plus the hot-path before/after ratio (scalar
//! reference kernels vs. the SoA/table fast paths for multi-sensor
//! synthesis and the Eq. 1 distance scan). Prints tables and writes the
//! machine-readable record to `BENCH_parallel.json` in the working
//! directory; CI's `perf` job feeds that artifact to
//! `check_bench_regression`.

use emtrust::acquisition::TestBench;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::parallel::ParallelConfig;
use emtrust_bench::{ArtifactDoc, OrExit, Report, EXPERIMENT_KEY};
use emtrust_dsp::distance;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_silicon::Channel;
use emtrust_sim::engine::Simulator;
use emtrust_trojan::ProtectedChip;
use std::time::Instant;

const N_TRACES: usize = 32;

/// Weight sets in the multi-sensor hot-path measurement (a 2×2 array).
const HOT_SETS: usize = 4;
/// Timing repeats; the minimum is recorded (least-noise estimator).
const HOT_REPEATS: usize = 3;
/// Repeats of each worker-count collect+fit measurement. Higher than
/// [`HOT_REPEATS`] because the regression gate compares these rows
/// across CI runs, where scheduler noise is worst.
const WORKER_REPEATS: usize = 5;
/// Golden-set shape for the Eq. 1 scan: vectors × window samples.
const HOT_VECS: usize = 32;
const HOT_WINDOW: usize = 256;

/// Minimum wall-clock seconds of `f` over [`HOT_REPEATS`] runs.
fn best_of(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..HOT_REPEATS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measures the synthesis + scoring hot paths before (scalar reference
/// kernels, one pass per sensor) and after (shared event walk with
/// amplitude tables, SoA distance scan). Returns the JSON fragment for
/// the artifact's `hot_path` field.
fn hot_path_ratio(report: &mut Report) -> String {
    // A real AES encryption supplies the event stream.
    let aes = emtrust_aes::AesHarness::new();
    let mut sim = Simulator::new(aes.netlist()).or_exit("sim");
    sim.start_recording();
    let _ = emtrust_aes::netlist::run_encryption(&mut sim, aes.ports(), [1; 16], [2; 16]);
    let activity = sim.take_recording();
    let model = CurrentModel::new(Library::generic_180nm(), ClockConfig::reference());

    // Deterministic synthetic coupling kernels — the timing only cares
    // that every cell carries a distinct nonzero weight per set.
    let n_cells = aes.netlist().cell_count();
    let weight_sets: Vec<Vec<f64>> = (0..HOT_SETS)
        .map(|s| {
            (0..n_cells)
                .map(|i| 0.2 + ((i * (s + 3)) % 17) as f64 / 17.0)
                .collect()
        })
        .collect();
    let set_refs: Vec<&[f64]> = weight_sets.iter().map(Vec::as_slice).collect();

    // Before: one full scalar-renderer pass per sensor.
    let synth_before_s = best_of(|| {
        for w in &weight_sets {
            let _ = model
                .synthesize_reference(aes.netlist(), &activity, Some(w), None)
                .or_exit("reference synthesis");
        }
    });
    // After: one shared event walk deposits into all sensors.
    let synth_after_s = best_of(|| {
        let _ = model
            .synthesize_multi(aes.netlist(), &activity, &set_refs, None, 1)
            .or_exit("multi synthesis");
    });

    // Equivalence cross-check while we are here: the fast path must
    // reproduce the reference bit for bit.
    let fast = model
        .synthesize_multi(aes.netlist(), &activity, &set_refs, None, 1)
        .or_exit("multi synthesis");
    for (w, got) in weight_sets.iter().zip(&fast) {
        let reference = model
            .synthesize_reference(aes.netlist(), &activity, Some(w), None)
            .or_exit("reference synthesis");
        assert_eq!(
            got.samples(),
            reference.samples(),
            "table-driven synthesis must be bit-identical to the reference"
        );
    }

    // Eq. 1 golden-distance scan over windows of the synthesized trace.
    let samples = fast[0].samples();
    let golden: Vec<Vec<f64>> = (0..HOT_VECS)
        .map(|v| {
            (0..HOT_WINDOW)
                .map(|i| samples[(v * HOT_WINDOW + i) % samples.len()])
                .collect()
        })
        .collect();
    let scan_before_s = best_of(|| {
        let _ = distance::eq1_threshold_reference(&golden).or_exit("reference scan");
    });
    // Serial on purpose: this isolates the SoA kernel, not the pool.
    let scan_after_s = best_of(|| {
        let _ = distance::eq1_threshold_with(&golden, 1, usize::MAX).or_exit("scan");
    });
    let th_before = distance::eq1_threshold_reference(&golden).or_exit("reference scan");
    let th_after = distance::eq1_threshold_with(&golden, 1, usize::MAX).or_exit("scan");
    assert!(
        (th_before - th_after).abs() <= 1e-9 * th_before.abs().max(1e-300),
        "lane-kernel threshold {th_after} drifted from reference {th_before}"
    );

    let before_s = synth_before_s + scan_before_s;
    let after_s = synth_after_s + scan_after_s;
    let ratio = before_s / after_s;
    report.table(
        &format!("Hot-path before/after ({HOT_SETS}-sensor synthesis + Eq. 1 scan)"),
        &["stage", "before s", "after s", "ratio"],
        &[
            vec![
                "synthesize".into(),
                format!("{synth_before_s:.4}"),
                format!("{synth_after_s:.4}"),
                format!("{:.2}x", synth_before_s / synth_after_s),
            ],
            vec![
                "eq1 scan".into(),
                format!("{scan_before_s:.4}"),
                format!("{scan_after_s:.4}"),
                format!("{:.2}x", scan_before_s / scan_after_s),
            ],
            vec![
                "combined".into(),
                format!("{before_s:.4}"),
                format!("{after_s:.4}"),
                format!("{ratio:.2}x"),
            ],
        ],
    );
    report.scalar("hot_path_ratio", ratio);
    format!(
        "{{\"sensors\": {HOT_SETS}, \"synth_before_seconds\": {synth_before_s:.6}, \
         \"synth_after_seconds\": {synth_after_s:.6}, \
         \"scan_before_seconds\": {scan_before_s:.6}, \
         \"scan_after_seconds\": {scan_after_s:.6}, \
         \"before_seconds\": {before_s:.6}, \"after_seconds\": {after_s:.6}, \
         \"ratio\": {ratio:.4}}}"
    )
}

fn main() {
    let mut report = Report::from_env("exp_throughput");
    let chip = ProtectedChip::golden();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut serial_s = 0.0f64;
    let mut reference = None;
    for workers in [1usize, 2, 4, 8] {
        let pool = ParallelConfig::default().with_workers(workers);
        let effective = pool.effective_workers(N_TRACES);
        let bench = TestBench::simulation(&chip)
            .or_exit("bench")
            .with_parallel(pool);
        let config = FingerprintConfig {
            parallel: pool,
            ..FingerprintConfig::default()
        };
        // Minimum of HOT_REPEATS runs: a single collect+fit is short
        // enough that scheduler noise would otherwise dominate the
        // speedup column the CI regression gate checks.
        let mut elapsed = f64::INFINITY;
        let mut fp = None;
        for _ in 0..WORKER_REPEATS {
            let t0 = Instant::now();
            let set = bench
                .collect(EXPERIMENT_KEY, N_TRACES, None, Channel::OnChipSensor, 42)
                .or_exit("collect");
            let fitted = GoldenFingerprint::fit(&set, config).or_exit("fit");
            elapsed = elapsed.min(t0.elapsed().as_secs_f64());
            fp = Some(fitted);
        }
        let fp = fp.or_exit("at least one repeat");
        // Determinism cross-check while we are here: every worker count
        // must reproduce the serial threshold bit for bit.
        match reference {
            None => {
                serial_s = elapsed;
                reference = Some(fp.threshold());
            }
            Some(th) => assert_eq!(
                fp.threshold().to_bits(),
                th.to_bits(),
                "threshold must not depend on the worker count"
            ),
        }
        let tps = N_TRACES as f64 / elapsed;
        let speedup = serial_s / elapsed;
        report.scalar(&format!("workers_{workers}_seconds"), elapsed);
        rows.push(vec![
            workers.to_string(),
            effective.to_string(),
            format!("{elapsed:.2}"),
            format!("{tps:.2}"),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "    {{\"workers\": {workers}, \"effective_workers\": {effective}, \
             \"seconds\": {elapsed:.4}, \
             \"traces_per_sec\": {tps:.4}, \"speedup\": {speedup:.4}}}"
        ));
    }
    report.table(
        &format!("Golden-set collect+fit throughput ({N_TRACES} traces)"),
        &["workers", "effective", "seconds", "traces/s", "speedup"],
        &rows,
    );
    let hot_path = hot_path_ratio(&mut report);
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let auto = ParallelConfig::auto_for(N_TRACES);
    ArtifactDoc::new("golden_collect_fit")
        .field_u64("n_traces", N_TRACES as u64)
        .field_u64("host_cpus", host_cpus as u64)
        .field_raw(
            "auto_tuned",
            format!(
                "{{\"workers\": {}, \"chunk_size\": {}}}",
                auto.workers, auto.chunk_size
            ),
        )
        .field_str(
            "note",
            "speedup is bounded by host_cpus; requested workers are clamped \
             to the host so oversubscription cannot regress below 1x",
        )
        .field_array("results", &json_rows)
        .field_raw("hot_path", hot_path)
        .write("BENCH_parallel.json", &mut report);
    report.finish();
}
