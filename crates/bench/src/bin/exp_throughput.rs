#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! Throughput of the parallel acquisition engine: golden-set collect+fit
//! at 1/2/4/8 workers. Prints a table and writes the machine-readable
//! record to `BENCH_parallel.json` in the working directory.

use emtrust::acquisition::TestBench;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::parallel::ParallelConfig;
use emtrust_bench::{ArtifactDoc, OrExit, Report, EXPERIMENT_KEY};
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;
use std::time::Instant;

const N_TRACES: usize = 32;

fn main() {
    let mut report = Report::from_env("exp_throughput");
    let chip = ProtectedChip::golden();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut serial_s = 0.0f64;
    let mut reference = None;
    for workers in [1usize, 2, 4, 8] {
        let pool = ParallelConfig::default().with_workers(workers);
        let bench = TestBench::simulation(&chip)
            .or_exit("bench")
            .with_parallel(pool);
        let config = FingerprintConfig {
            parallel: pool,
            ..FingerprintConfig::default()
        };
        let t0 = Instant::now();
        let set = bench
            .collect(EXPERIMENT_KEY, N_TRACES, None, Channel::OnChipSensor, 42)
            .or_exit("collect");
        let fp = GoldenFingerprint::fit(&set, config).or_exit("fit");
        let elapsed = t0.elapsed().as_secs_f64();
        // Determinism cross-check while we are here: every worker count
        // must reproduce the serial threshold bit for bit.
        match reference {
            None => {
                serial_s = elapsed;
                reference = Some(fp.threshold());
            }
            Some(th) => assert_eq!(
                fp.threshold().to_bits(),
                th.to_bits(),
                "threshold must not depend on the worker count"
            ),
        }
        let tps = N_TRACES as f64 / elapsed;
        let speedup = serial_s / elapsed;
        report.scalar(&format!("workers_{workers}_seconds"), elapsed);
        rows.push(vec![
            workers.to_string(),
            format!("{elapsed:.2}"),
            format!("{tps:.2}"),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "    {{\"workers\": {workers}, \"seconds\": {elapsed:.4}, \
             \"traces_per_sec\": {tps:.4}, \"speedup\": {speedup:.4}}}"
        ));
    }
    report.table(
        &format!("Golden-set collect+fit throughput ({N_TRACES} traces)"),
        &["workers", "seconds", "traces/s", "speedup"],
        &rows,
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    ArtifactDoc::new("golden_collect_fit")
        .field_u64("n_traces", N_TRACES as u64)
        .field_u64("host_cpus", host_cpus as u64)
        .field_str(
            "note",
            "speedup is bounded by host_cpus; on a single-core host all \
             worker counts time-slice one core",
        )
        .field_array("results", &json_rows)
        .write("BENCH_parallel.json", &mut report);
    report.finish();
}
