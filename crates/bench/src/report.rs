//! Shared output handling for the `exp_*` binaries: every experiment
//! accepts `--json` (machine-readable document on stdout) and `--quiet`
//! (no stdout at all — useful when only the written artifacts matter).
//!
//! The default text mode prints the paper-style tables exactly as
//! before; [`Report`] additionally accumulates everything it is shown so
//! the `--json` document is complete regardless of mode.

use emtrust::telemetry::sink::{json_escape, json_number};
use std::time::{SystemTime, UNIX_EPOCH};

/// How an experiment binary talks to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMode {
    /// Paper-style tables and notes (the default).
    #[default]
    Text,
    /// One JSON document on stdout, nothing else.
    Json,
    /// Nothing on stdout; written artifacts only.
    Quiet,
}

impl OutputMode {
    /// Parses the process arguments. Unknown flags abort with exit
    /// code 2 so CI catches typos; when both flags appear the last wins.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// [`Self::from_env`] over an explicit argument list.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut mode = OutputMode::Text;
        for arg in args {
            match arg.as_str() {
                "--json" => mode = OutputMode::Json,
                "--quiet" => mode = OutputMode::Quiet,
                other if other.starts_with('-') => {
                    eprintln!("unknown flag {other}; supported: --json --quiet");
                    std::process::exit(2);
                }
                _ => {}
            }
        }
        mode
    }
}

/// Accumulates an experiment's tables, notes and scalar metrics, and
/// renders them according to the selected [`OutputMode`].
#[derive(Debug)]
pub struct Report {
    mode: OutputMode,
    experiment: String,
    scalars: Vec<(String, f64)>,
    tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
    notes: Vec<String>,
}

impl Report {
    /// A report for `experiment` in the mode parsed from the process
    /// arguments.
    pub fn from_env(experiment: &str) -> Self {
        Self::new(experiment, OutputMode::from_env())
    }

    /// A report for `experiment` in an explicit mode.
    pub fn new(experiment: &str, mode: OutputMode) -> Self {
        Report {
            mode,
            experiment: experiment.to_string(),
            scalars: Vec::new(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The selected mode.
    pub fn mode(&self) -> OutputMode {
        self.mode
    }

    /// Whether plain-text extras (ASCII histograms, spectra, die maps)
    /// should print. They have no JSON rendering, so they run in text
    /// mode only.
    pub fn is_text(&self) -> bool {
        self.mode == OutputMode::Text
    }

    /// Records (and in text mode prints) a titled table.
    pub fn table(&mut self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        if self.is_text() {
            crate::print_table(title, headers, rows);
        }
        self.tables.push((
            title.to_string(),
            headers.iter().map(|h| h.to_string()).collect(),
            rows.to_vec(),
        ));
    }

    /// Records (and in text mode prints) a free-form note.
    pub fn note(&mut self, text: impl AsRef<str>) {
        let text = text.as_ref();
        if self.is_text() {
            println!("{text}");
        }
        self.notes.push(text.to_string());
    }

    /// Records a machine-readable metric (JSON document only).
    pub fn scalar(&mut self, key: &str, value: f64) {
        self.scalars.push((key.to_string(), value));
    }

    /// Renders the accumulated report: the JSON document in `--json`
    /// mode, nothing extra otherwise (text mode already printed).
    pub fn finish(self) {
        if self.mode == OutputMode::Json {
            println!("{}", self.to_json());
        }
    }

    /// The complete report as one JSON document.
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .scalars
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), json_number(*v)))
            .collect();
        let tables: Vec<String> = self
            .tables
            .iter()
            .map(|(title, headers, rows)| {
                let hs: Vec<String> = headers
                    .iter()
                    .map(|h| format!("\"{}\"", json_escape(h)))
                    .collect();
                let rs: Vec<String> = rows
                    .iter()
                    .map(|row| {
                        let cells: Vec<String> = row
                            .iter()
                            .map(|c| format!("\"{}\"", json_escape(c)))
                            .collect();
                        format!("        [{}]", cells.join(", "))
                    })
                    .collect();
                format!(
                    "    {{\n      \"title\": \"{}\",\n      \"headers\": [{}],\n      \
                     \"rows\": [\n{}\n      ]\n    }}",
                    json_escape(title),
                    hs.join(", "),
                    rs.join(",\n")
                )
            })
            .collect();
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("    \"{}\"", json_escape(n)))
            .collect();
        format!(
            "{{\n  \"experiment\": \"{}\",\n  \"timestamp_unix\": {},\n  \"git_rev\": \"{}\",\n  \
             \"metrics\": {{\n{}\n  }},\n  \"tables\": [\n{}\n  ],\n  \"notes\": [\n{}\n  ]\n}}",
            json_escape(&self.experiment),
            unix_timestamp(),
            json_escape(&git_rev()),
            metrics.join(",\n"),
            tables.join(",\n"),
            notes.join(",\n")
        )
    }
}

/// Exit-on-failure unwrapping for the `exp_*` binaries, which run under
/// the workspace's `unwrap_used`/`expect_used` lint gate: a missing
/// value or error is an operator-facing condition, so it prints one
/// line to stderr and exits 1 instead of panicking with a backtrace.
pub trait OrExit<T> {
    /// The contained value, or `eprintln!` + `exit(1)` naming `what`.
    fn or_exit(self, what: &str) -> T;
}

impl<T, E: std::fmt::Display> OrExit<T> for Result<T, E> {
    fn or_exit(self, what: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{what}: {e}");
                std::process::exit(1);
            }
        }
    }
}

impl<T> OrExit<T> for Option<T> {
    fn or_exit(self, what: &str) -> T {
        match self {
            Some(v) => v,
            None => {
                eprintln!("{what}: missing value");
                std::process::exit(1);
            }
        }
    }
}

/// Writes one artifact file, exiting 1 with a one-line diagnostic on
/// failure — the shared tail of every `BENCH_*.json` writer.
pub fn write_artifact(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}

/// Writes a JSONL artifact — one pre-rendered JSON object per line,
/// trailing newline included — exiting 1 on failure like
/// [`write_artifact`]. The cell-level attribution rankings export this
/// way: one record per ranked cell streams into `jq`/pandas without a
/// top-level array.
pub fn write_jsonl(path: &str, lines: &[String]) {
    let mut contents = lines.join("\n");
    contents.push('\n');
    write_artifact(path, &contents);
}

/// Builds the provenance-stamped `BENCH_*.json` artifacts the `exp_*`
/// binaries write for `check_bench_schema`: every document leads with
/// the `benchmark` discriminator, `timestamp_unix`, and `git_rev`,
/// followed by experiment-specific fields in insertion order.
///
/// Values are raw JSON fragments supplied by the caller (via the typed
/// helpers where possible), so the builder never guesses at escaping or
/// nesting — it only owns the provenance header, the top-level layout,
/// and the write-plus-note tail every binary used to copy-paste.
#[derive(Debug)]
pub struct ArtifactDoc {
    benchmark: String,
    fields: Vec<(String, String)>,
}

impl ArtifactDoc {
    /// A document for the `benchmark` discriminator
    /// `check_bench_schema` dispatches on.
    pub fn new(benchmark: &str) -> Self {
        Self {
            benchmark: benchmark.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field whose value is an already-rendered JSON fragment
    /// (object, bool literal, pre-formatted number…).
    pub fn field_raw(mut self, key: &str, raw: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), raw.into()));
        self
    }

    /// Appends an unsigned-integer field.
    pub fn field_u64(self, key: &str, value: u64) -> Self {
        self.field_raw(key, value.to_string())
    }

    /// Appends a finite-float field (rendered via [`json_number`]).
    pub fn field_f64(self, key: &str, value: f64) -> Self {
        self.field_raw(key, json_number(value))
    }

    /// Appends a boolean field.
    pub fn field_bool(self, key: &str, value: bool) -> Self {
        self.field_raw(key, if value { "true" } else { "false" })
    }

    /// Appends an escaped string field.
    pub fn field_str(self, key: &str, value: &str) -> Self {
        self.field_raw(key, format!("\"{}\"", json_escape(value)))
    }

    /// Appends an array field from pre-rendered, pre-indented items
    /// (the binaries indent items with four spaces, matching the
    /// two-space top level).
    pub fn field_array(self, key: &str, items: &[String]) -> Self {
        self.field_raw(key, format!("[\n{}\n  ]", items.join(",\n")))
    }

    /// Renders the document: provenance header first (stamped now, at
    /// render time — never inside measured code), then the fields.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"timestamp_unix\": {},\n  \"git_rev\": \"{}\"",
            json_escape(&self.benchmark),
            unix_timestamp(),
            json_escape(&git_rev())
        );
        for (key, value) in &self.fields {
            let _ = write!(out, ",\n  \"{}\": {}", json_escape(key), value);
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the document to `path` (exit 1 on failure) and notes the
    /// artifact on the report.
    pub fn write(&self, path: &str, report: &mut Report) {
        write_artifact(path, &self.to_json());
        report.note(format!("\nwrote {path}"));
    }
}

/// Wall-clock seconds since the Unix epoch, read once at call time.
/// For stamping artifacts as they are written — never in measured code.
pub fn unix_timestamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The git revision stamped into artifacts: `EMTRUST_GIT_REV` when CI
/// sets it, otherwise `git rev-parse HEAD` from the working tree, and
/// only then the `"unknown"` sentinel (which `check_bench_schema`
/// rejects — a committed artifact must carry real provenance).
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("EMTRUST_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
    {
        if out.status.success() {
            if let Ok(rev) = String::from_utf8(out.stdout) {
                let rev = rev.trim().to_string();
                if !rev.is_empty() {
                    return rev;
                }
            }
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mode_parsing_defaults_to_text_and_last_flag_wins() {
        assert_eq!(OutputMode::from_args(args(&[])), OutputMode::Text);
        assert_eq!(OutputMode::from_args(args(&["--json"])), OutputMode::Json);
        assert_eq!(OutputMode::from_args(args(&["--quiet"])), OutputMode::Quiet);
        assert_eq!(
            OutputMode::from_args(args(&["--json", "--quiet"])),
            OutputMode::Quiet
        );
    }

    #[test]
    fn json_document_round_trips_through_the_parser() {
        let mut r = Report::new("demo", OutputMode::Json);
        r.table(
            "t\"1\"",
            &["a", "b"],
            &[vec!["x".into(), "1".into()], vec!["y".into(), "2".into()]],
        );
        r.note("shape check: fine");
        r.scalar("snr_db", 29.976);
        let v = Value::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("demo"));
        assert!(v.get("timestamp_unix").unwrap().as_u64().is_some());
        assert!(v.get("git_rev").unwrap().as_str().is_some());
        assert_eq!(
            v.get("metrics").unwrap().get("snr_db").unwrap().as_f64(),
            Some(29.976)
        );
        let tables = v.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables[0].get("title").unwrap().as_str(), Some("t\"1\""));
        assert_eq!(tables[0].get("rows").unwrap().as_array().unwrap().len(), 2);
        let notes = v.get("notes").unwrap().as_array().unwrap();
        assert_eq!(notes[0].as_str(), Some("shape check: fine"));
    }

    #[test]
    fn git_rev_resolves_real_provenance() {
        // CI sets EMTRUST_GIT_REV; local runs (and this test) fall back
        // to `git rev-parse HEAD` of the working tree. Either way the
        // sentinel must not leak into artifacts.
        let rev = git_rev();
        assert_ne!(rev, "unknown");
        assert!(rev.len() >= 7, "suspiciously short revision {rev:?}");
    }

    #[test]
    fn quiet_reports_accumulate_without_printing() {
        let mut r = Report::new("demo", OutputMode::Quiet);
        assert!(!r.is_text());
        r.table("t", &["a"], &[vec!["1".into()]]);
        r.note("n");
        r.finish();
    }
}
