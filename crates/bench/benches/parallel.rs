//! Serial vs. parallel benchmarks for the acquisition → fingerprint →
//! batch-evaluation engine. Each group sweeps the worker count so
//! `cargo bench` doubles as the speedup report (`exp_throughput` writes
//! the machine-readable version to `BENCH_parallel.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emtrust::acquisition::TestBench;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::parallel::ParallelConfig;
use emtrust_bench::EXPERIMENT_KEY;
use emtrust_silicon::Channel;
use emtrust_trojan::ProtectedChip;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn parallel_collect(c: &mut Criterion) {
    let chip = ProtectedChip::golden();
    let n_traces = 8usize;
    let mut g = c.benchmark_group("parallel_collect");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n_traces as u64));
    for workers in WORKER_SWEEP {
        let bench = TestBench::simulation(&chip)
            .expect("bench")
            .with_parallel(ParallelConfig::default().with_workers(workers));
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                bench
                    .collect(EXPERIMENT_KEY, n_traces, None, Channel::OnChipSensor, 42)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn parallel_fit(c: &mut Criterion) {
    // Fit cost is dominated by feature extraction plus the O(n²) Eq. 1
    // pair scan, both fanned across the pool.
    let chip = ProtectedChip::golden();
    let golden = TestBench::simulation(&chip)
        .expect("bench")
        .collect(EXPERIMENT_KEY, 24, None, Channel::OnChipSensor, 7)
        .expect("golden set");
    let mut g = c.benchmark_group("parallel_fit");
    g.sample_size(10);
    g.throughput(Throughput::Elements(golden.len() as u64));
    for workers in WORKER_SWEEP {
        let config = FingerprintConfig {
            parallel: ParallelConfig::default().with_workers(workers),
            ..FingerprintConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| GoldenFingerprint::fit(&golden, config).unwrap())
        });
    }
    g.finish();
}

fn parallel_evaluate_batch(c: &mut Criterion) {
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).expect("bench");
    let golden = bench
        .collect(EXPERIMENT_KEY, 16, None, Channel::OnChipSensor, 7)
        .expect("golden set");
    let suspects = bench
        .collect(EXPERIMENT_KEY, 16, None, Channel::OnChipSensor, 8)
        .expect("suspect set");
    let mut g = c.benchmark_group("parallel_evaluate_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(suspects.len() as u64));
    for workers in WORKER_SWEEP {
        let config = FingerprintConfig {
            parallel: ParallelConfig::default().with_workers(workers),
            ..FingerprintConfig::default()
        };
        let fp = GoldenFingerprint::fit(&golden, config).expect("fit");
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| fp.evaluate_batch(suspects.traces()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    parallel,
    parallel_collect,
    parallel_fit,
    parallel_evaluate_batch
);
criterion_main!(parallel);
