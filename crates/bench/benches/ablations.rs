//! Ablation studies over the design choices DESIGN.md calls out. Each
//! group also *prints* the quality metric it probes, so `cargo bench`
//! doubles as the ablation report:
//!
//! - `ablation_pca` — detection distance with and without PCA (§III-D),
//! - `ablation_coil_turns` — sensor coupling vs. spiral turn count (the
//!   paper's future-work knob),
//! - `ablation_probe_height` — external-probe coupling vs. standoff
//!   ("signal intensity is closely related to the distance"),
//! - `ablation_samples_per_cycle` — acquisition rate vs. detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emtrust::acquisition::TestBench;
use emtrust::euclidean::trojan_distance_study;
use emtrust::fingerprint::FingerprintConfig;
use emtrust_bench::EXPERIMENT_KEY;
use emtrust_em::coil::Coil;
use emtrust_em::coupling::CouplingMap;
use emtrust_layout::floorplan::Die;
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

fn ablation_pca(c: &mut Criterion) {
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::silicon(&chip, 1).expect("bench");
    let mut g = c.benchmark_group("ablation_pca");
    g.sample_size(10);
    for (label, config) in [
        ("with_pca8", FingerprintConfig::default()),
        (
            "without_pca",
            FingerprintConfig {
                pca_components: None,
                ..FingerprintConfig::default()
            },
        ),
    ] {
        // Report the quality metric once.
        let rows = trojan_distance_study(
            &bench,
            EXPERIMENT_KEY,
            &[TrojanKind::T4PowerDegrader],
            12,
            Channel::OnChipSensor,
            config,
            7,
        )
        .expect("study");
        println!(
            "ablation_pca/{label}: T4 distance {:.4}, threshold {:.4}, margin {:.1}x",
            rows[0].centroid_distance,
            rows[0].threshold,
            rows[0].centroid_distance / rows[0].threshold
        );
        g.bench_function(label, |b| {
            b.iter(|| {
                trojan_distance_study(
                    &bench,
                    EXPERIMENT_KEY,
                    &[TrojanKind::T4PowerDegrader],
                    8,
                    Channel::OnChipSensor,
                    config,
                    7,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn ablation_coil_turns(c: &mut Criterion) {
    let die = Die::square(600.0).expect("die");
    let mut g = c.benchmark_group("ablation_coil_turns");
    g.sample_size(10);
    for turns in [5usize, 10, 20, 40] {
        let coil: Coil = SpiralSensor::with_turns(die, turns).expect("spiral").into();
        let map = CouplingMap::build(&coil, die).expect("map");
        println!(
            "ablation_coil_turns/{turns}: mean |M| = {:.3e} H (more turns, more flux linkage)",
            map.mean_abs()
        );
        g.bench_with_input(BenchmarkId::from_parameter(turns), &turns, |b, &t| {
            b.iter(|| {
                let coil: Coil = SpiralSensor::with_turns(die, t).unwrap().into();
                CouplingMap::build(&coil, die).unwrap()
            })
        });
    }
    g.finish();
}

fn ablation_probe_height(c: &mut Criterion) {
    let die = Die::square(600.0).expect("die");
    let mut g = c.benchmark_group("ablation_probe_height");
    g.sample_size(10);
    for z_um in [100.0f64, 300.0, 1000.0, 3000.0] {
        let probe = ExternalProbe::over_die(die)
            .with_standoff(z_um)
            .expect("probe");
        let coil: Coil = probe.into();
        let map = CouplingMap::build(&coil, die).expect("map");
        println!(
            "ablation_probe_height/{z_um}um: mean |M| = {:.3e} H (coupling falls with distance)",
            map.mean_abs()
        );
        g.bench_with_input(BenchmarkId::from_parameter(z_um as u64), &z_um, |b, &z| {
            b.iter(|| {
                let coil: Coil = ExternalProbe::over_die(die)
                    .with_standoff(z)
                    .unwrap()
                    .into();
                CouplingMap::build(&coil, die).unwrap()
            })
        });
    }
    g.finish();
}

fn ablation_samples_per_cycle(c: &mut Criterion) {
    use emtrust_netlist::library::Library;
    use emtrust_power::{ClockConfig, CurrentModel};
    use emtrust_sim::engine::Simulator;

    // Current-synthesis cost and waveform fidelity vs. acquisition rate.
    let aes = emtrust_aes::AesHarness::new();
    let mut sim = Simulator::new(aes.netlist()).expect("sim");
    sim.start_recording();
    let _ = emtrust_aes::netlist::run_encryption(&mut sim, aes.ports(), [1; 16], [2; 16]);
    let activity = sim.take_recording();

    let mut g = c.benchmark_group("ablation_samples_per_cycle");
    g.sample_size(10);
    for spc in [16usize, 64, 256] {
        let model = CurrentModel::new(
            Library::generic_180nm(),
            ClockConfig::new(10e6, spc).expect("clock"),
        );
        let trace = model
            .synthesize(aes.netlist(), &activity, None, None)
            .expect("trace");
        println!(
            "ablation_samples_per_cycle/{spc}: peak current {:.3e} A over {} samples",
            trace.samples().iter().fold(0.0f64, |m, &x| m.max(x)),
            trace.len()
        );
        g.bench_with_input(BenchmarkId::from_parameter(spc), &spc, |b, &s| {
            let model =
                CurrentModel::new(Library::generic_180nm(), ClockConfig::new(10e6, s).unwrap());
            b.iter(|| {
                model
                    .synthesize(aes.netlist(), &activity, None, None)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_pca,
    ablation_coil_turns,
    ablation_probe_height,
    ablation_samples_per_cycle
);
criterion_main!(ablations);
