//! Criterion benchmarks: one per regenerated table/figure, measuring the
//! cost of the pipeline stage that dominates each experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use emtrust::acquisition::TestBench;
use emtrust::euclidean::distance_panel;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust_bench::{measure_snr, EXPERIMENT_KEY};
use emtrust_netlist::library::Library;
use emtrust_netlist::stats::design_summary;
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

fn table1_gate_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("build_and_count_protected_chip", |b| {
        b.iter(|| {
            let chip = ProtectedChip::with_all_trojans();
            design_summary(chip.netlist(), &Library::generic_180nm())
        })
    });
    g.finish();
}

fn snr_simulation(c: &mut Criterion) {
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).expect("bench");
    let mut g = c.benchmark_group("snr");
    g.sample_size(10);
    g.bench_function("simulation_onchip_8_blocks", |b| {
        b.iter(|| measure_snr(&bench, Channel::OnChipSensor, 8, 1).unwrap())
    });
    g.finish();
}

fn snr_silicon(c: &mut Criterion) {
    let chip = ProtectedChip::golden();
    let bench = TestBench::silicon(&chip, 1).expect("bench");
    let mut g = c.benchmark_group("snr");
    g.sample_size(10);
    g.bench_function("silicon_onchip_8_blocks", |b| {
        b.iter(|| measure_snr(&bench, Channel::OnChipSensor, 8, 1).unwrap())
    });
    g.finish();
}

fn euclidean_detection(c: &mut Criterion) {
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).expect("bench");
    let golden = bench
        .collect(EXPERIMENT_KEY, 16, None, Channel::OnChipSensor, 1)
        .expect("golden traces");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fit");
    let probe = golden.traces()[0].clone();
    let mut g = c.benchmark_group("euclidean");
    g.sample_size(10);
    g.bench_function("fit_16_traces", |b| {
        b.iter(|| GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap())
    });
    g.bench_function("evaluate_one_trace", |b| {
        b.iter(|| fp.evaluate(&probe).unwrap())
    });
    g.finish();
}

fn a2_spectral_detection(c: &mut Criterion) {
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).expect("bench");
    let window = bench
        .collect_continuous(EXPERIMENT_KEY, 16, None, Channel::OnChipSensor, 1)
        .expect("window");
    let det = SpectralDetector::fit(&window, SpectralConfig::default()).expect("fit");
    let mut g = c.benchmark_group("spectral");
    g.sample_size(10);
    g.bench_function("fit_16_blocks", |b| {
        b.iter(|| SpectralDetector::fit(&window, SpectralConfig::default()).unwrap())
    });
    g.bench_function("compare_window", |b| {
        b.iter(|| det.compare(&window).unwrap())
    });
    g.finish();
}

fn fig6_panels(c: &mut Criterion) {
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::silicon(&chip, 1).expect("bench");
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("histogram_panel_t4_8_traces", |b| {
        b.iter(|| {
            distance_panel(
                &bench,
                EXPERIMENT_KEY,
                TrojanKind::T4PowerDegrader,
                8,
                Channel::OnChipSensor,
                20,
                1,
            )
            .unwrap()
        })
    });
    g.bench_function("spectrum_window_8_blocks", |b| {
        b.iter(|| {
            bench
                .collect_continuous(EXPERIMENT_KEY, 8, None, Channel::OnChipSensor, 1)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    experiments,
    table1_gate_counts,
    snr_simulation,
    snr_silicon,
    euclidean_detection,
    a2_spectral_detection,
    fig6_panels
);
criterion_main!(experiments);
