//! Gate-level AES-128 netlist generator.
//!
//! Architecture: iterative, one round per clock cycle, matching the compact
//! ASIC AES cores the paper's class of test chips use:
//!
//! - 128-bit state register, 128-bit round-key register, 4-bit round
//!   counter,
//! - 16 BDD-synthesized S-boxes for SubBytes plus 4 for the on-the-fly key
//!   schedule,
//! - ShiftRows as pure wiring, MixColumns as an XOR network with a
//!   last-round bypass mux,
//! - a control truth table (round counter → Rcon byte, `advance`, `last`,
//!   `done`) synthesized through the same BDD path.
//!
//! Protocol: drive `pt`/`key`, pulse `start` high for one cycle, then clock
//! 10 more cycles; `done` rises and `ct` holds the ciphertext. Eleven
//! edges per block in total (see [`run_encryption`]).
//!
//! Bit convention: bus index `8·b + i` is bit `i` (LSB) of block byte `b`,
//! so a 128-bit bus equals `u128::from_le_bytes(block)`.

use crate::reference::RCON;
use crate::sbox::sbox_truth_table;
use emtrust_netlist::graph::{NetId, Netlist};
use emtrust_netlist::synth::{BddSynthesizer, TruthTable};
use emtrust_netlist::NetlistError;
use emtrust_sim::engine::Simulator;

/// The primary ports of a generated AES-128 core.
#[derive(Debug, Clone)]
pub struct AesPorts {
    /// Load strobe: latch `pt`/`key` and begin a new encryption.
    pub start: NetId,
    /// Plaintext input bus (128 bits, see module docs for bit order).
    pub pt: Vec<NetId>,
    /// Key input bus (128 bits).
    pub key: Vec<NetId>,
    /// Ciphertext output bus — the state register (128 bits).
    pub ct: Vec<NetId>,
    /// High once the encryption has completed.
    pub done: NetId,
    /// The 4-bit round counter (exposed for observability and for the
    /// Trojan generators, which tap architectural state).
    pub round: Vec<NetId>,
}

/// Converts a block to the 128-bit bus word (little-endian bytes).
pub fn block_to_word(block: [u8; 16]) -> u128 {
    u128::from_le_bytes(block)
}

/// Converts a 128-bit bus word back to a block.
pub fn word_to_block(word: u128) -> [u8; 16] {
    word.to_le_bytes()
}

/// Builds an AES-128 core into `netlist` under the module tag `aes`.
///
/// # Panics
///
/// Panics only on internal inconsistencies (the S-box and control truth
/// tables are statically well-formed).
pub fn build_aes(netlist: &mut Netlist) -> AesPorts {
    netlist.push_module("aes");

    let start = netlist.input("start");
    let pt = netlist.input_bus("pt", 128);
    let key = netlist.input_bus("key", 128);

    // Registers.
    let mut state_q = Vec::with_capacity(128);
    let mut state_d = Vec::with_capacity(128);
    let mut key_q = Vec::with_capacity(128);
    let mut key_d = Vec::with_capacity(128);
    netlist.push_module("state_reg");
    for _ in 0..128 {
        let (q, d) = netlist.dff_deferred();
        state_q.push(q);
        state_d.push(d);
    }
    netlist.pop_module();
    netlist.push_module("key_reg");
    for _ in 0..128 {
        let (q, d) = netlist.dff_deferred();
        key_q.push(q);
        key_d.push(d);
    }
    netlist.pop_module();
    netlist.push_module("ctrl");
    let mut round_q = Vec::with_capacity(4);
    let mut round_d = Vec::with_capacity(4);
    for _ in 0..4 {
        let (q, d) = netlist.dff_deferred();
        round_q.push(q);
        round_d.push(d);
    }

    // Control table: round -> (rcon[0..8], advance[8], last[9], done[10]).
    let ctrl_tt = TruthTable::from_fn(4, 11, |r| {
        let rcon = if (1..=10).contains(&r) {
            RCON[r] as u64
        } else {
            0
        };
        let advance = u64::from((1..=10).contains(&r));
        let last = u64::from(r == 10);
        let done = u64::from(r == 11);
        rcon | advance << 8 | last << 9 | done << 10
    })
    .expect("control table is well-formed");
    let ctrl = BddSynthesizer::from_truth_table(&ctrl_tt)
        .emit(netlist, &round_q)
        .expect("control emission");
    let rcon_bits = &ctrl[0..8];
    let advance = ctrl[8];
    let last = ctrl[9];
    let done = ctrl[10];

    // Round counter increment (ripple): r0'=!r0, carries through ANDs.
    let inc0 = netlist.not(round_q[0]);
    let c01 = round_q[0];
    let inc1 = netlist.xor2(round_q[1], c01);
    let c12 = netlist.and2(round_q[0], round_q[1]);
    let inc2 = netlist.xor2(round_q[2], c12);
    let c23 = netlist.and2(c12, round_q[2]);
    let inc3 = netlist.xor2(round_q[3], c23);
    let inc = [inc0, inc1, inc2, inc3];
    // d_round = start ? 1 : (advance ? round+1 : round).
    for i in 0..4 {
        let adv = netlist.mux2(round_q[i], inc[i], advance);
        let init = netlist.constant(i == 0);
        let d = netlist.mux2(adv, init, start);
        netlist.connect_dff_d(round_d.remove(0), d);
    }
    netlist.pop_module(); // ctrl

    // SubBytes: 16 S-boxes on the state register.
    let sbox = BddSynthesizer::from_truth_table(&sbox_truth_table().expect("s-box table"));
    let mut sub = vec![netlist.const0(); 128];
    for b in 0..16 {
        netlist.push_module(&format!("sbox{b}"));
        let ins: Vec<NetId> = (0..8).map(|i| state_q[8 * b + i]).collect();
        let outs = sbox.emit(netlist, &ins).expect("s-box emission");
        for i in 0..8 {
            sub[8 * b + i] = outs[i];
        }
        netlist.pop_module();
    }

    // ShiftRows: pure wiring — out[r + 4c] = in[r + 4((c + r) % 4)].
    let mut shifted = vec![netlist.const0(); 128];
    for r in 0..4 {
        for c in 0..4 {
            let src = r + 4 * ((c + r) % 4);
            let dst = r + 4 * c;
            for i in 0..8 {
                shifted[8 * dst + i] = sub[8 * src + i];
            }
        }
    }

    // MixColumns XOR network.
    netlist.push_module("mixcols");
    let mut mixed = vec![netlist.const0(); 128];
    for c in 0..4 {
        let byte =
            |r: usize| -> Vec<NetId> { (0..8).map(|i| shifted[8 * (4 * c + r) + i]).collect() };
        let cols: [Vec<NetId>; 4] = [byte(0), byte(1), byte(2), byte(3)];
        let xt: Vec<Vec<NetId>> = cols.iter().map(|b| emit_xtime(netlist, b)).collect();
        for r in 0..4 {
            for i in 0..8 {
                // out_r = xtime(s_r) ^ xtime(s_{r+1}) ^ s_{r+1} ^ s_{r+2} ^ s_{r+3}
                let terms = [
                    xt[r][i],
                    xt[(r + 1) % 4][i],
                    cols[(r + 1) % 4][i],
                    cols[(r + 2) % 4][i],
                    cols[(r + 3) % 4][i],
                ];
                mixed[8 * (4 * c + r) + i] = netlist.xor_many(&terms);
            }
        }
    }
    netlist.pop_module();

    // Last-round bypass: rows only (no MixColumns in round 10).
    netlist.push_module("bypass");
    let pre_ark: Vec<NetId> = (0..128)
        .map(|i| netlist.mux2(mixed[i], shifted[i], last))
        .collect();
    netlist.pop_module();

    // Key schedule: next round key from key_q and the Rcon byte.
    netlist.push_module("ksch");
    // RotWord(w3) = bytes [13, 14, 15, 12]; SubWord via 4 S-boxes.
    let mut subword = Vec::with_capacity(32);
    for (j, src_byte) in [13usize, 14, 15, 12].iter().enumerate() {
        netlist.push_module(&format!("sbox{j}"));
        let ins: Vec<NetId> = (0..8).map(|i| key_q[8 * src_byte + i]).collect();
        let outs = sbox.emit(netlist, &ins).expect("key-schedule s-box");
        subword.extend(outs);
        netlist.pop_module();
    }
    // t = SubWord(RotWord(w3)) ^ Rcon (Rcon XORs into byte 0 only).
    let mut t: Vec<NetId> = subword;
    for i in 0..8 {
        t[i] = netlist.xor2(t[i], rcon_bits[i]);
    }
    // w0' = w0 ^ t; w_i' = w_i ^ w_{i-1}' for i in 1..4.
    let mut next_key = vec![netlist.const0(); 128];
    for i in 0..32 {
        next_key[i] = netlist.xor2(key_q[i], t[i]);
    }
    for w in 1..4 {
        for i in 0..32 {
            let idx = 32 * w + i;
            next_key[idx] = netlist.xor2(key_q[idx], next_key[32 * (w - 1) + i]);
        }
    }
    netlist.pop_module();

    // AddRoundKey with the *next* round key (computed this cycle).
    netlist.push_module("ark");
    let round_out: Vec<NetId> = (0..128)
        .map(|i| netlist.xor2(pre_ark[i], next_key[i]))
        .collect();
    netlist.pop_module();

    // Load path: state <- pt ^ key (initial AddRoundKey).
    netlist.push_module("load");
    let load_state: Vec<NetId> = (0..128).map(|i| netlist.xor2(pt[i], key[i])).collect();
    netlist.pop_module();

    // Register input muxes.
    netlist.push_module("state_mux");
    for i in 0..128 {
        let adv = netlist.mux2(state_q[i], round_out[i], advance);
        let d = netlist.mux2(adv, load_state[i], start);
        netlist.connect_dff_d(state_d.remove(0), d);
    }
    netlist.pop_module();
    netlist.push_module("key_mux");
    for i in 0..128 {
        let adv = netlist.mux2(key_q[i], next_key[i], advance);
        let d = netlist.mux2(adv, key[i], start);
        netlist.connect_dff_d(key_d.remove(0), d);
    }
    netlist.pop_module();

    netlist.mark_output_bus("ct", &state_q);
    netlist.mark_output("done", done);
    netlist.pop_module(); // aes

    AesPorts {
        start,
        pt,
        key,
        ct: state_q,
        done,
        round: round_q,
    }
}

/// Emits the GF(2⁸) `xtime` of an 8-bit bus (3 XOR gates).
fn emit_xtime(netlist: &mut Netlist, byte: &[NetId]) -> Vec<NetId> {
    debug_assert_eq!(byte.len(), 8);
    let s7 = byte[7];
    vec![
        s7,
        netlist.xor2(byte[0], s7),
        byte[1],
        netlist.xor2(byte[2], s7),
        netlist.xor2(byte[3], s7),
        byte[4],
        byte[5],
        byte[6],
    ]
}

/// Drives one full encryption on a running simulator: 12 clock edges
/// (input propagation + load + 10 rounds). Returns the ciphertext block.
///
/// Inputs set before an edge settle through the combinational cloud during
/// that edge's cycle and are captured at the *next* edge (standard
/// synchronous timing), hence the one-cycle lead-in.
///
/// The simulator may be recording activity; the 12 cycles of this block
/// will be appended to the recording.
pub fn run_encryption(
    sim: &mut Simulator<'_>,
    ports: &AesPorts,
    key: [u8; 16],
    pt: [u8; 16],
) -> [u8; 16] {
    run_encryption_with(sim, ports, key, pt, |_| {})
}

/// Like [`run_encryption`], invoking `observe` after every clock edge —
/// the hook through which the measurement pipeline samples analog side
/// state (e.g. Trojan T2's leakage-sense net) cycle by cycle.
pub fn run_encryption_with(
    sim: &mut Simulator<'_>,
    ports: &AesPorts,
    key: [u8; 16],
    pt: [u8; 16],
    mut observe: impl FnMut(&Simulator<'_>),
) -> [u8; 16] {
    sim.set_bus(&ports.key, block_to_word(key));
    sim.set_bus(&ports.pt, block_to_word(pt));
    sim.set_input(ports.start, true);
    sim.step(); // lead-in: load values settle on the register d-pins
    observe(sim);
    sim.set_input(ports.start, false);
    sim.step(); // load edge: state <- pt ^ key, round <- 1
    observe(sim);
    for _ in 0..10 {
        sim.step();
        observe(sim);
    }
    debug_assert!(sim.value(ports.done), "done must be high after 12 edges");
    word_to_block(sim.bus(&ports.ct))
}

/// Number of clock edges one encryption takes (lead-in + load + 10 rounds).
pub const CYCLES_PER_BLOCK: usize = 12;

/// An owned AES core: netlist plus ports, ready to spawn simulators.
#[derive(Debug)]
pub struct AesHarness {
    netlist: Netlist,
    ports: AesPorts,
}

impl AesHarness {
    /// Generates a standalone AES-128 netlist.
    pub fn new() -> Self {
        let mut netlist = Netlist::new("aes128");
        let ports = build_aes(&mut netlist);
        Self { netlist, ports }
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The core's ports.
    pub fn ports(&self) -> &AesPorts {
        &self.ports
    }

    /// Spawns a fresh simulator over the netlist.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from simulator construction (none occur
    /// for the generated core; the signature keeps the contract honest).
    pub fn simulator(&self) -> Result<Simulator<'_>, NetlistError> {
        Simulator::new(&self.netlist)
    }

    /// Encrypts one block on a fresh simulator (convenience for tests).
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn encrypt_block(&self, key: [u8; 16], pt: [u8; 16]) -> Result<[u8; 16], NetlistError> {
        let mut sim = self.simulator()?;
        Ok(run_encryption(&mut sim, &self.ports, key, pt))
    }
}

impl Default for AesHarness {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Aes128;
    use rand::{Rng, SeedableRng};

    const FIPS_KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    const FIPS_PT: [u8; 16] = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];

    #[test]
    fn word_block_round_trip() {
        let block: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        assert_eq!(word_to_block(block_to_word(block)), block);
        assert_eq!(
            block_to_word([1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            1
        );
    }

    #[test]
    fn netlist_validates_and_has_expected_scale() {
        let aes = AesHarness::new();
        assert!(aes.netlist().validate().is_ok());
        let cells = aes.netlist().cell_count();
        assert!(
            (4_000..40_000).contains(&cells),
            "AES core cell count out of expected range: {cells}"
        );
        // 128 state + 128 key + 4 round counter flops.
        use emtrust_netlist::cell::CellKind;
        assert_eq!(aes.netlist().count_kind(CellKind::Dff), 260);
    }

    #[test]
    fn netlist_matches_fips_vector() {
        let aes = AesHarness::new();
        let ct = aes.encrypt_block(FIPS_KEY, FIPS_PT).unwrap();
        let expect = Aes128::new(FIPS_KEY).encrypt_block(FIPS_PT);
        assert_eq!(ct, expect);
        assert_eq!(ct[0], 0x39);
    }

    #[test]
    fn netlist_matches_reference_on_random_blocks() {
        let aes = AesHarness::new();
        let mut sim = aes.simulator().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..8 {
            let key: [u8; 16] = rng.gen();
            let pt: [u8; 16] = rng.gen();
            let hw = run_encryption(&mut sim, aes.ports(), key, pt);
            let sw = Aes128::new(key).encrypt_block(pt);
            assert_eq!(hw, sw, "key {key:02x?} pt {pt:02x?}");
        }
    }

    #[test]
    fn back_to_back_encryptions_are_independent() {
        let aes = AesHarness::new();
        let mut sim = aes.simulator().unwrap();
        let a = run_encryption(&mut sim, aes.ports(), FIPS_KEY, FIPS_PT);
        let b = run_encryption(&mut sim, aes.ports(), FIPS_KEY, [0u8; 16]);
        let c = run_encryption(&mut sim, aes.ports(), FIPS_KEY, FIPS_PT);
        assert_eq!(a, c, "state must fully reload between blocks");
        assert_ne!(a, b);
    }

    #[test]
    fn done_goes_high_only_at_the_end() {
        let aes = AesHarness::new();
        let mut sim = aes.simulator().unwrap();
        sim.set_bus(&aes.ports().key, block_to_word(FIPS_KEY));
        sim.set_bus(&aes.ports().pt, block_to_word(FIPS_PT));
        sim.set_input(aes.ports().start, true);
        sim.step(); // lead-in
        sim.set_input(aes.ports().start, false);
        for cycle in 0..11 {
            assert!(!sim.value(aes.ports().done), "done early at cycle {cycle}");
            sim.step();
        }
        assert!(sim.value(aes.ports().done));
    }

    #[test]
    fn state_register_tracks_reference_rounds() {
        let aes = AesHarness::new();
        let reference = Aes128::new(FIPS_KEY);
        let mut sim = aes.simulator().unwrap();
        sim.set_bus(&aes.ports().key, block_to_word(FIPS_KEY));
        sim.set_bus(&aes.ports().pt, block_to_word(FIPS_PT));
        sim.set_input(aes.ports().start, true);
        sim.step(); // lead-in
        sim.set_input(aes.ports().start, false);
        sim.step(); // load edge
                    // After the load edge the state register holds the round-0 state.
        assert_eq!(
            word_to_block(sim.bus(&aes.ports().ct)),
            reference.state_after_round(FIPS_PT, 0)
        );
        for r in 1..=10 {
            sim.step();
            assert_eq!(
                word_to_block(sim.bus(&aes.ports().ct)),
                reference.state_after_round(FIPS_PT, r),
                "round {r}"
            );
        }
    }

    #[test]
    fn activity_is_recorded_during_encryption() {
        let aes = AesHarness::new();
        let mut sim = aes.simulator().unwrap();
        sim.start_recording();
        let _ = run_encryption(&mut sim, aes.ports(), FIPS_KEY, FIPS_PT);
        let trace = sim.take_recording();
        assert_eq!(trace.cycle_count(), CYCLES_PER_BLOCK);
        // An AES round flips roughly half the state plus the S-box cloud —
        // thousands of toggles per cycle.
        assert!(
            trace.mean_toggles_per_cycle() > 500.0,
            "suspiciously low activity: {}",
            trace.mean_toggles_per_cycle()
        );
    }

    #[test]
    fn module_tags_cover_the_design() {
        use emtrust_netlist::stats::module_stats;
        let aes = AesHarness::new();
        let total = module_stats(aes.netlist(), "aes").total;
        assert_eq!(total, aes.netlist().cell_count());
        assert!(module_stats(aes.netlist(), "aes/sbox0").total > 100);
        assert!(module_stats(aes.netlist(), "aes/ksch").total > 400);
        assert!(module_stats(aes.netlist(), "aes/mixcols").total > 300);
    }
}
