//! Behavioural AES-128 reference (FIPS-197).
//!
//! Used as the golden functional model: the gate-level netlist's outputs
//! are asserted against this implementation, and the trust-evaluation
//! experiments use it to generate plaintext/ciphertext workloads.
//!
//! State convention: a block is `[u8; 16]` where byte `b` is FIPS input
//! byte `in[b]`, i.e. state element `s[r][c] = block[r + 4c]`.

use crate::sbox::AES_SBOX;

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
pub const ROUNDS: usize = 10;

/// Round constants `Rcon[1..=10]` (first byte; the rest are zero).
pub const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

/// A behavioural AES-128 cipher with a precomputed key schedule.
#[derive(Debug, Clone)]
pub struct Aes128 {
    /// Round keys 0..=10, each 16 bytes in block order.
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..NK {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in NK..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = AES_SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / NK];
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys }
    }

    /// The round key for round `r` (0 = initial AddRoundKey).
    ///
    /// # Panics
    ///
    /// Panics if `r > 10`.
    pub fn round_key(&self, r: usize) -> [u8; 16] {
        self.round_keys[r]
    }

    /// Encrypts one block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..ROUNDS {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[ROUNDS]);
        s
    }

    /// The state after the initial AddRoundKey and the first `r` full
    /// rounds — matches the netlist's state register after `r + 1` loaded
    /// cycles, which the cross-check tests rely on.
    ///
    /// # Panics
    ///
    /// Panics if `r > 10`.
    pub fn state_after_round(&self, block: [u8; 16], r: usize) -> [u8; 16] {
        assert!(r <= ROUNDS, "AES-128 has 10 rounds");
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..=r {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            if round != ROUNDS {
                mix_columns(&mut s);
            }
            add_round_key(&mut s, &self.round_keys[round]);
        }
        s
    }
}

/// SubBytes on a block in place.
pub fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = AES_SBOX[*b as usize];
    }
}

/// ShiftRows on a block in place (`s[r][c] = s[r][(c + r) % 4]`).
pub fn shift_rows(s: &mut [u8; 16]) {
    let old = *s;
    for r in 0..4 {
        for c in 0..4 {
            s[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }
    }
}

/// Multiplication by `x` in GF(2⁸) with the AES polynomial `0x11b`.
pub fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// MixColumns on a block in place.
pub fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        for r in 0..4 {
            s[4 * c + r] = xtime(col[r])
                ^ (xtime(col[(r + 1) % 4]) ^ col[(r + 1) % 4])
                ^ col[(r + 2) % 4]
                ^ col[(r + 3) % 4];
        }
    }
}

/// AddRoundKey on a block in place.
pub fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in s.iter_mut().zip(rk) {
        *b ^= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    const FIPS_PT: [u8; 16] = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];
    const FIPS_CT: [u8; 16] = [
        0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b,
        0x32,
    ];

    #[test]
    fn fips_197_appendix_b_vector() {
        let ct = Aes128::new(FIPS_KEY).encrypt_block(FIPS_PT);
        assert_eq!(ct, FIPS_CT);
    }

    #[test]
    fn fips_197_appendix_c_vector() {
        // Key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(key).encrypt_block(pt), expect);
    }

    #[test]
    fn key_schedule_first_and_last_round_keys() {
        let aes = Aes128::new(FIPS_KEY);
        assert_eq!(aes.round_key(0), FIPS_KEY);
        // FIPS-197 Appendix A: w[40..43] = d014f9a8 c9ee2589 e13f0cc8 b6630ca6.
        let rk10 = aes.round_key(10);
        assert_eq!(&rk10[..4], &[0xd0, 0x14, 0xf9, 0xa8]);
        assert_eq!(&rk10[12..], &[0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn round_trace_matches_fips_appendix_b() {
        let aes = Aes128::new(FIPS_KEY);
        // After initial ARK (round 0).
        let s0 = aes.state_after_round(FIPS_PT, 0);
        assert_eq!(
            s0,
            [
                0x19, 0x3d, 0xe3, 0xbe, 0xa0, 0xf4, 0xe2, 0x2b, 0x9a, 0xc6, 0x8d, 0x2a, 0xe9, 0xf8,
                0x48, 0x08
            ]
        );
        // Start of round 2 per FIPS-197 Appendix B.
        let s1 = aes.state_after_round(FIPS_PT, 1);
        assert_eq!(
            s1,
            [
                0xa4, 0x9c, 0x7f, 0xf2, 0x68, 0x9f, 0x35, 0x2b, 0x6b, 0x5b, 0xea, 0x43, 0x02, 0x6a,
                0x50, 0x49
            ]
        );
        // Full encryption equals round 10.
        assert_eq!(aes.state_after_round(FIPS_PT, 10), FIPS_CT);
    }

    #[test]
    fn xtime_matches_gf_multiplication() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
        assert_eq!(xtime(0x01), 0x02);
    }

    #[test]
    fn shift_rows_row0_is_fixed() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        shift_rows(&mut s);
        // Row 0 (bytes 0, 4, 8, 12) unchanged.
        assert_eq!([s[0], s[4], s[8], s[12]], [0, 4, 8, 12]);
        // Row 1 rotates by one column.
        assert_eq!([s[1], s[5], s[9], s[13]], [5, 9, 13, 1]);
    }

    #[test]
    fn mix_columns_known_column() {
        // FIPS-197 / common test vector: db 13 53 45 -> 8e 4d a1 bc.
        let mut s = [0u8; 16];
        s[0] = 0xdb;
        s[1] = 0x13;
        s[2] = 0x53;
        s[3] = 0x45;
        mix_columns(&mut s);
        assert_eq!(&s[..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }

    #[test]
    fn add_round_key_is_involutive() {
        let mut s = FIPS_PT;
        add_round_key(&mut s, &FIPS_KEY);
        add_round_key(&mut s, &FIPS_KEY);
        assert_eq!(s, FIPS_PT);
    }

    #[test]
    fn different_plaintexts_give_different_ciphertexts() {
        let aes = Aes128::new(FIPS_KEY);
        let a = aes.encrypt_block([0u8; 16]);
        let b = aes.encrypt_block([1u8; 16]);
        assert_ne!(a, b);
    }
}
