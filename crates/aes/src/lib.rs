//! # emtrust-aes
//!
//! AES-128 — the device under test of the DAC 2020 on-chip EM sensor paper.
//!
//! Two implementations are provided and cross-checked:
//!
//! - [`mod@reference`] — a behavioural AES-128 (FIPS-197), used as the golden
//!   functional model and for generating test vectors,
//! - [`netlist`] — a gate-level, one-round-per-cycle AES-128 netlist built
//!   on `emtrust-netlist` (BDD-synthesized S-boxes, XOR-network
//!   MixColumns, on-the-fly key schedule). This is the circuit whose
//!   switching activity feeds the EM model, standing in for the paper's
//!   vendor-synthesized 180 nm netlist.
//!
//! # Examples
//!
//! Encrypt the FIPS-197 example block behaviourally:
//!
//! ```
//! use emtrust_aes::reference::Aes128;
//!
//! let key = [
//!     0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
//! ];
//! let pt = [
//!     0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
//!     0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
//! ];
//! let ct = Aes128::new(key).encrypt_block(pt);
//! assert_eq!(ct[0], 0x39);
//! assert_eq!(ct[15], 0x32);
//! ```

pub mod netlist;
pub mod reference;
pub mod sbox;

pub use netlist::{build_aes, AesHarness, AesPorts};
pub use reference::Aes128;
pub use sbox::AES_SBOX;
